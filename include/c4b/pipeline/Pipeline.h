//===--- Pipeline.h - Staged analysis pipeline ------------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis as an explicit pipeline of immutable stage artifacts:
///
///   source ──parse──▶ ParsedModule ──lower──▶ LoweredModule
///     ──check──▶ CheckedModule
///     ──generateConstraints──▶ ConstraintSystem ──solveSystem──▶ SolvedSystem
///
/// Each artifact is self-contained and reusable.  A LoweredModule can be
/// re-solved under different metrics, options, or focus functions without
/// re-parsing; a ConstraintSystem is a *materialized* record of the
/// constraint stream (variable names included) that can be replayed into
/// the presolving LP solver, the certificate validator, or a serializer
/// without re-walking the IR.  The classic `analyzeProgram`/`analyzeSource`
/// entry points are thin wrappers over these stages.
///
/// The check stage (c4b/check/Check.h) sits between lowering and
/// constraint generation: the IR verifier is the trust boundary that
/// keeps the derivation rules on the fragment they are sound for, the
/// lints surface suspicious-but-analyzable code, and the interval
/// pre-pass produces the optional loop-head facts consumed when
/// `AnalysisOptions::SeedIntervals` is set.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_PIPELINE_PIPELINE_H
#define C4B_PIPELINE_PIPELINE_H

#include "c4b/analysis/Analyzer.h"
#include "c4b/analysis/ConstraintGen.h"
#include "c4b/analysis/Summary.h"
#include "c4b/ast/AST.h"
#include "c4b/ir/IR.h"
#include "c4b/pipeline/Cache.h"
#include "c4b/sem/Metric.h"
#include "c4b/support/Diagnostics.h"
#include "c4b/support/Error.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace c4b {

/// Stage 1 artifact: a parsed source buffer.  `Ast` is empty on parse
/// failure; `Diags` holds the reasons either way.
struct ParsedModule {
  std::string Name;
  std::optional<Program> Ast;
  DiagnosticEngine Diags;

  bool ok() const { return Ast.has_value(); }
};

/// Parses one source buffer.  \p Name is a caller-chosen label carried
/// through the pipeline (batch reports, diagnostics).
ParsedModule parseModule(const std::string &Source, std::string Name = "");

/// Stage 2 artifact: the normalized IR of a module.  `IR` is empty when
/// parsing or lowering failed; `Diags` accumulates both stages.
struct LoweredModule {
  std::string Name;
  std::optional<IRProgram> IR;
  DiagnosticEngine Diags;

  bool ok() const { return IR.has_value(); }
};

/// Lowers a parsed module (consumes it: the AST moves into the lowering).
LoweredModule lowerModule(ParsedModule P);

/// Convenience: parse + lower in one step.
LoweredModule frontend(const std::string &Source, std::string Name = "");

/// Knobs for the check stage (stage 2.5).
struct PipelineOptions {
  /// Run the structural IR verifier.  Always on in debug builds (the
  /// sanitizer CI job exercises it on every test program); opt-in in
  /// release, where lowering is trusted on the hot batch path.
#ifndef NDEBUG
  bool VerifyIR = true;
#else
  bool VerifyIR = false;
#endif
  /// Run the dataflow lints (read-before-write, dead stores, unreachable
  /// code, dead ticks, unused call results); reported as warnings.
  bool Lint = false;
  /// Cross-run analysis cache (tier 3 of the query-avoidance layer).
  /// When set, the batch analyzer consults it before constraint
  /// generation and stores fresh deterministic outcomes back; unset means
  /// every job runs the full pipeline.  Shared across jobs and batches —
  /// hand the same instance to successive runs to get warm-start
  /// behavior.
  std::shared_ptr<AnalysisCache> Cache;
  /// Re-validate every cache hit against a freshly generated constraint
  /// system before serving it (one derivation walk, no LP).  Off by
  /// default: the on-disk checksum already catches corruption, and a hit
  /// can always be validated after the fact with checkCertificate.
  bool VerifyCachedCerts = false;
  /// Cross-run summary store consumed and fed by the scheduled
  /// interprocedural analysis (AnalysisOptions::SummaryScheduling).  When
  /// set, solved SCC fragments are served from / stored into it at
  /// summary granularity — an edited function invalidates only its SCC
  /// and transitive callers instead of the whole module.  Shared across
  /// jobs and batches, like Cache.
  std::shared_ptr<SummaryStore> Summaries;
  /// Worker threads for mutually independent SCCs of one wave in the
  /// scheduled analysis.  1 (the default) is fully serial; ignored (kept
  /// serial) when a budget is enabled, since budget counters are
  /// thread-local.
  int SCCThreads = 1;
};

/// Stage 2.5 artifact: a lowered module plus its check-stage verdict.
/// `IR` is kept even when verification fails (callers may want to print
/// it), but `ok()` refuses to hand unverified IR to constraint generation.
struct CheckedModule {
  std::string Name;
  std::optional<IRProgram> IR;
  DiagnosticEngine Diags; ///< Frontend diagnostics + check-stage output.
  bool Verified = true;   ///< False when the verifier found violations.
  int LintWarnings = 0;   ///< Lint warnings emitted into Diags.
  /// Typed failure when the stage was aborted (budget, injected fault).
  AnalysisError Err;

  bool ok() const { return IR.has_value() && Verified && !Err.isError(); }
};

/// Stage 2.5: runs the check subsystem over a lowered module (consumes
/// it).  With both options off this is a pure repackaging.
CheckedModule checkModule(LoweredModule L, const PipelineOptions &O = {});

/// Stage 3 artifact: the constraint system of one derivation walk,
/// materialized.  Replaces the live-only ConstraintSink coupling: the
/// variable/constraint stream the walk emitted is recorded here verbatim
/// (ids are positions, so a replay reproduces the walk exactly), together
/// with the function specifications needed to form objectives and read
/// bounds back out of a solution.
struct ConstraintSystem {
  /// Metric/options that pinned down the derivation walk.  A solution of
  /// this system certifies bounds only under these.
  std::string MetricName;
  AnalysisOptions Options;

  /// The recorded stream: VarNames[i] names LP variable i (all variables
  /// are implicitly >= 0), Constraints in emission order.
  std::vector<std::string> VarNames;
  std::vector<LinConstraint> Constraints;

  /// Canonical per-function specs (objective formation, bound read-back).
  std::map<std::string, FuncSpec> Specs;

  /// False when the walk failed structurally (call-depth blowout, missing
  /// function); Diags then carries one note per failure site.
  bool StructuralOk = false;
  DiagnosticEngine Diags;
  /// Typed failure when the walk was aborted mid-stream (constraint
  /// budget, deadline, injected fault); the recorded prefix is kept.
  AnalysisError Err;

  // Walk statistics.
  int WeakenPoints = 0;
  int CallInstantiations = 0;

  // Query-avoidance statistics of the walk (tiers 1-2): how the context
  // entail/bound/feasibility queries behind the derivation were answered.
  long CtxQueries = 0;
  long CtxTier1Hits = 0;
  long CtxTier2Hits = 0;
  long CtxLpFallbacks = 0;

  // Cost-slicing record of the walk.  Options.CostSlicing reflects the
  // *effective* mode (a budget-aborted relevance pass downgrades it);
  // SliceDigests are the per-function digests the certificate embeds so
  // the checker's independent re-derivation can disagree loudly.
  std::map<std::string, std::uint64_t> SliceDigests;
  long StmtsSliced = 0;
  long CallsCollapsed = 0;
  long ConstraintsAvoided = 0;

  int numVars() const { return static_cast<int>(VarNames.size()); }
  int numConstraints() const { return static_cast<int>(Constraints.size()); }

  /// Replays the recorded stream into \p Sink: every variable in id order,
  /// then every constraint in emission order.  Ids line up with the
  /// original walk by construction.
  void replay(ConstraintSink &Sink) const;

  /// The two-stage lexicographic objectives of Section 5 over this
  /// system's specs (see ProgramAnalyzer::stage1Objective).
  std::vector<LinTerm> stage1Objective(const std::string &Focus = "") const;
  std::vector<LinTerm> stage2Objective(const std::string &Focus = "") const;

  /// Reads the bound of \p Function out of a solved value vector.
  std::optional<Bound> boundOf(const std::string &Function,
                               const std::vector<Rational> &Values) const;

  /// Line-oriented text export (variables, then constraints); stable
  /// across replays of the same walk.
  std::string serialize() const;
};

/// Stage 3: runs the derivation walk once and materializes it.
ConstraintSystem generateConstraints(const IRProgram &P,
                                     const ResourceMetric &M,
                                     const AnalysisOptions &O = {});

/// Stage 4 artifact: one LP solve of a ConstraintSystem.
struct SolvedSystem {
  LPStatus Status = LPStatus::Infeasible;
  /// The full rational solution: a proof certificate for the bounds.
  std::vector<Rational> Values;
  /// Solved bound of every function in the system.
  std::map<std::string, Bound> Bounds;

  /// Typed failure when the solve was aborted (pivot budget, deadline,
  /// coefficient overflow, internal invariant); Status is then untrusted.
  AnalysisError Err;

  // Solver statistics.
  int NumEliminated = 0;
  /// Simplex pivots spent on this system (all stages, exact and
  /// deterministic — the golden pivot tests key on this).
  long LpPivots = 0;
  /// Solves that restarted from a live basis (the stage-2 lexicographic
  /// re-optimization warm-starts from the stage-1 optimum).
  long LpWarmStarts = 0;
  /// Shape of the presolved system the simplex actually ran on.
  int LpRows = 0;
  int LpCols = 0;
  /// Fraction of constraint-matrix entries nonzero after presolve.
  double LpDensity = 0.0;
  /// Basis refactorizations of the revised simplex core (eta-budget
  /// trips plus staleness rebuilds after warm addConstraint).
  long LpRefactors = 0;
  /// Peak eta-file length reached (bounded by the refactor policy).
  int LpMaxEtaLen = 0;

  bool ok() const { return Status == LPStatus::Optimal && !Err.isError(); }
};

/// Stage 4: replays \p CS into the presolving LP solver and runs the
/// (optionally two-stage) minimization.  Different \p Focus values re-use
/// the same ConstraintSystem; no IR walk happens here.
SolvedSystem solveSystem(const ConstraintSystem &CS,
                         const std::string &Focus = "");

/// Assembles the classic AnalysisResult from stage artifacts.  The serial
/// entry points and the batch analyzer both go through this, so their
/// results are identical by construction (AnalysisSeconds excepted — the
/// caller stamps wall time).
AnalysisResult toAnalysisResult(const ConstraintSystem &CS, SolvedSystem S);

//===----------------------------------------------------------------------===//
// Scheduled interprocedural analysis (SCC waves + reusable summaries)
//===----------------------------------------------------------------------===//

/// Per-run counters of one scheduled analysis, plus the per-stage
/// time/pivot spend the batch analyzer folds into StageTimings.  The
/// seconds are CPU-side sums over fragments: with SCCThreads > 1 they can
/// exceed wall time.
struct ScheduledStats {
  int SummariesApplied = 0; ///< Cross-SCC call sites served by a splice.
  int SummariesReused = 0;  ///< Fragments served whole from the store.
  int SCCsSolved = 0;       ///< Fragments generated + solved fresh.
  int NumWaves = 0;
  int MaxWaveWidth = 0;
  double GenerateSeconds = 0;
  double SolveSeconds = 0;
  long GeneratePivots = 0;
  long SolvePivots = 0;
};

/// Runs the analysis scheduled over call-graph SCC waves, bottom-up: each
/// SCC becomes its own constraint fragment (cross-SCC calls splice callee
/// summaries — see c4b/analysis/Summary.h), solved standalone; results are
/// assembled in SCC order.  Requires `O.PolymorphicCalls` (monomorphic
/// specs couple all functions into one LP); `analyzeProgram` dispatches
/// here when `O.SummaryScheduling` is also set.  Corpus bounds are
/// bit-identical to the monolithic path (differential-gated).
///
/// \p Store, when non-null, serves previously solved fragments by content
/// key and receives fresh ones — the incremental path.  The fragment
/// containing \p Focus is always solved fresh (its objective depends on
/// the focus, its key must not).  \p SCCThreads > 1 solves the mutually
/// independent SCCs of one wave concurrently (ignored under a budget).
AnalysisResult analyzeProgramScheduled(const IRProgram &P,
                                       const ResourceMetric &M,
                                       const AnalysisOptions &O,
                                       const std::string &Focus = "",
                                       SummaryStore *Store = nullptr,
                                       int SCCThreads = 1,
                                       ScheduledStats *Stats = nullptr);

/// Deterministically re-generates the per-SCC constraint fragments of a
/// scheduled analysis, in bottom-up SCC order, without solving anything —
/// the certificate checker's replay (a scheduled certificate's value
/// vector is validated fragment by fragment).  \p Keys, when non-null,
/// receives each fragment's content key (sccSummaryKey) so consumed
/// summary references can be validated too.
std::vector<ConstraintSystem>
generateScheduledFragments(const IRProgram &P, const ResourceMetric &M,
                           const AnalysisOptions &O,
                           std::vector<std::uint64_t> *Keys = nullptr);

} // namespace c4b

#endif // C4B_PIPELINE_PIPELINE_H
