//===--- Batch.h - Parallel corpus analysis ---------------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A batch analyzer that fans a corpus of programs (and metric/option
/// sweeps over them) across a worker thread pool.  Every job runs the
/// exact serial pipeline of Pipeline.h — parse, lower, constraint-gen,
/// solve — so results are bit-identical to one-at-a-time analysis; jobs
/// share no mutable state (the support layers were audited for hidden
/// shared state: see "Pipeline architecture" in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef C4B_PIPELINE_BATCH_H
#define C4B_PIPELINE_BATCH_H

#include "c4b/analysis/Analyzer.h"
#include "c4b/pipeline/Pipeline.h"

#include <memory>
#include <string>
#include <vector>

namespace c4b {

/// One unit of batch work: a source (or an already-lowered program shared
/// across sweep jobs) plus the analysis configuration.
struct BatchJob {
  std::string Name;
  /// C4B-language source; ignored when IR is set.
  std::string Source;
  /// Optional pre-lowered program.  Sweep jobs varying only the metric or
  /// options can share one IR and skip the frontend entirely.
  std::shared_ptr<const IRProgram> IR;
  ResourceMetric Metric = ResourceMetric::ticks();
  AnalysisOptions Options;
  /// Check-stage configuration (verifier / lints) for this job.
  PipelineOptions Pipe;
  std::string Focus;
};

/// Wall-clock seconds spent in each pipeline stage of one job, plus the
/// simplex pivots each stage burned (the derivation walk spends pivots on
/// logical-context queries; the solve stage on the main LP).
struct StageTimings {
  double FrontendSeconds = 0;   ///< parse + lower (0 for shared-IR jobs)
  double CheckSeconds = 0;      ///< verifier + lints (0 when both are off)
  double GenerateSeconds = 0;   ///< derivation walk (constraint-gen)
  double SolveSeconds = 0;      ///< presolve + simplex
  long GeneratePivots = 0;      ///< pivots in context entail/bound queries
  long SolvePivots = 0;         ///< pivots in the main (two-stage) solve

  // Query-avoidance counters of the generate stage (see QueryStats):
  // every context query of the walk, bucketed by how it was answered.
  long GenQueries = 0;
  long GenTier1Hits = 0;
  long GenTier2Hits = 0;
  long GenLpFallbacks = 0;

  // Cost-slicing counters of the generate stage (see QueryStats): cost-
  // dead statements the walk skipped, PureZero call sites collapsed to
  // identity transfers, and the estimated constraint rows not emitted.
  long GenStmtsSliced = 0;
  long GenCallsCollapsed = 0;
  long GenConstraintsAvoided = 0;

  // Scheduled-analysis counters (zero on the monolithic path): summary
  // splices at call sites, whole fragments served from the summary store,
  // fragments solved fresh, and the shape of the wave schedule.  Summed
  // across jobs like the other counters, except MaxWaveWidth which takes
  // the maximum.
  long SummariesApplied = 0;
  long SummariesReused = 0;
  long SCCsSolved = 0;
  long Waves = 0;
  int MaxWaveWidth = 0;

  double totalSeconds() const {
    return FrontendSeconds + CheckSeconds + GenerateSeconds + SolveSeconds;
  }
  StageTimings &operator+=(const StageTimings &O) {
    FrontendSeconds += O.FrontendSeconds;
    CheckSeconds += O.CheckSeconds;
    GenerateSeconds += O.GenerateSeconds;
    SolveSeconds += O.SolveSeconds;
    GeneratePivots += O.GeneratePivots;
    SolvePivots += O.SolvePivots;
    GenQueries += O.GenQueries;
    GenTier1Hits += O.GenTier1Hits;
    GenTier2Hits += O.GenTier2Hits;
    GenLpFallbacks += O.GenLpFallbacks;
    GenStmtsSliced += O.GenStmtsSliced;
    GenCallsCollapsed += O.GenCallsCollapsed;
    GenConstraintsAvoided += O.GenConstraintsAvoided;
    SummariesApplied += O.SummariesApplied;
    SummariesReused += O.SummariesReused;
    SCCsSolved += O.SCCsSolved;
    Waves += O.Waves;
    MaxWaveWidth = MaxWaveWidth > O.MaxWaveWidth ? MaxWaveWidth
                                                 : O.MaxWaveWidth;
    return *this;
  }
};

/// Outcome of one job, in job order.
struct BatchItem {
  std::string Name;
  AnalysisResult Result;
  StageTimings Timings;
  /// Rendered check-stage diagnostics (verifier errors, lint warnings);
  /// empty when the stage was off or silent.
  std::string CheckDiags;
  /// True when this job's fresh result was stored into the cross-run
  /// cache (Result.FromCache marks the opposite direction: served from
  /// it).
  bool StoredToCache = false;
};

/// Aggregate statistics of the last run.
struct BatchStats {
  int NumJobs = 0;
  /// Jobs that produced certified bounds (degraded jobs not included).
  int NumSucceeded = 0;
  /// Jobs rescued by the ranking-function fallback (Result.Degraded).
  int NumDegraded = 0;
  /// Jobs with no usable result at all (!Result.Success).
  int NumFailed = 0;
  /// Of the failed jobs, how many died on the wall-clock deadline ...
  int NumDeadline = 0;
  /// ... and how many on the pivot/constraint budget.
  int NumLpBudget = 0;
  /// Jobs that were re-run after a first failure (retry knob).
  int NumRetried = 0;
  /// Jobs served from the cross-run analysis cache (tier 3); they skip
  /// the generate and solve stages entirely.
  int NumCacheHits = 0;
  /// Jobs whose fresh result was stored into the cache.
  int NumCacheStores = 0;
  /// End-to-end wall time of the run (not the sum of per-job times).
  double WallSeconds = 0;
  /// Per-stage times summed over all jobs (CPU-side cost of each stage).
  StageTimings StageTotals;
};

/// Runs batches of analysis jobs on a fixed-size worker pool.  Each job is
/// a fault-containment domain: a budget kill, injected fault, invariant
/// failure, or foreign exception inside one job becomes a typed failure on
/// that item (with the stage timings recorded up to the kill) and the
/// batch always runs to completion.
class BatchAnalyzer {
public:
  /// \p NumThreads <= 0 selects std::thread::hardware_concurrency().
  /// \p RetryFailedOnce re-runs each failed job a single time and keeps
  /// the second outcome — useful against transient faults; deterministic
  /// failures simply fail twice.
  explicit BatchAnalyzer(int NumThreads = 0, bool RetryFailedOnce = false);

  /// Analyzes every job; the result vector is indexed like \p Jobs
  /// regardless of scheduling, and each entry is bit-identical to what the
  /// serial entry points produce for the same job.
  std::vector<BatchItem> run(const std::vector<BatchJob> &Jobs);

  /// The configured worker count (the constructor's request, with <= 0
  /// already resolved to the hardware concurrency).
  int numThreads() const { return NumThreads; }
  /// The worker count a run actually uses: numThreads() clamped to the
  /// hardware concurrency.  Oversubscribed requests keep their configured
  /// numThreads() but never spawn more workers than cores.
  int effectiveThreads() const;
  const BatchStats &stats() const { return Stats; }

private:
  int NumThreads;
  bool RetryFailedOnce;
  BatchStats Stats;
};

} // namespace c4b

#endif // C4B_PIPELINE_BATCH_H
