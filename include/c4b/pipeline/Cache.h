//===--- Cache.h - Content-addressed cross-run result cache -----*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tier 3 of the query-avoidance layer: a content-addressed cache of
/// whole-analysis outcomes.  Entries are keyed on a stable hash of the
/// lowered module IR plus everything else that pins down the derivation
/// and the solve (metric constants, analysis options, focus function), so
/// a re-run of an unchanged module skips the generate and solve stages
/// entirely and replays the stored bounds + certificate values.
///
/// The cache stores only deterministic outcomes: certified successes and
/// the NoLinearBound verdicts (structural blowout, LP infeasibility) that
/// any run of the same content reproduces.  Budget kills, deadlines, and
/// injected faults are run-specific and are never cached.  Soundness is never delegated to
/// the cache: every entry carries the full certificate values, an
/// integrity checksum guards the on-disk form (a corrupted entry is
/// treated as a miss and the module is re-analyzed), and callers can
/// re-validate a hit against a freshly materialized constraint system
/// (PipelineOptions::VerifyCachedCerts, or checkCertificate directly).
///
//===----------------------------------------------------------------------===//

#ifndef C4B_PIPELINE_CACHE_H
#define C4B_PIPELINE_CACHE_H

#include "c4b/analysis/Analyzer.h"
#include "c4b/ir/IR.h"
#include "c4b/sem/Metric.h"
#include "c4b/support/Hash.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace c4b {

/// The content address of one analysis: the module hash keys the cache;
/// the per-function hashes let callers (and tests) pinpoint which
/// function's change invalidated an entry.
struct ModuleKey {
  std::uint64_t Hash = 0;
  std::map<std::string, std::uint64_t> FunctionKeys;
};

/// Hashes the lowered IR (via its canonical printer) together with the
/// metric constants, the result-relevant analysis options, and the focus
/// function.  Budget limits, the ranking fallback, and the
/// query-avoidance switch are deliberately excluded: they change whether
/// or how fast an answer is produced, never which answer.
ModuleKey moduleCacheKey(const IRProgram &P, const ResourceMetric &M,
                         const AnalysisOptions &O, const std::string &Focus);

/// One cached analysis outcome.
struct CacheEntry {
  /// True for a certified success; false for a deterministic failure
  /// (Error then carries the reason and Kind the typed verdict).
  bool Ok = false;
  AnalysisErrorKind Kind = AnalysisErrorKind::None;
  std::string Error;
  /// The certificate: the full rational solution of the constraint
  /// system, plus the bounds it certifies.
  std::vector<Rational> Values;
  std::map<std::string, Bound> Bounds;
  // Statistics of the original run, replayed into the served result so a
  // cached AnalysisResult is bit-identical to a fresh one.
  int NumVars = 0;
  int NumConstraints = 0;
  int NumEliminated = 0;
  int NumWeakenPoints = 0;
  int NumCallInstantiations = 0;
  // Cost-slicing provenance (see AnalysisResult): the effective mode, the
  // per-function slice digests the certificate embeds, and the slicing
  // counters — replayed so a cached result stays bit-identical.
  bool Sliced = false;
  std::map<std::string, std::uint64_t> SliceDigests;
  long NumStmtsSliced = 0;
  long NumCallsCollapsed = 0;
  long NumConstraintsAvoided = 0;
  // Scheduled-analysis provenance (see AnalysisResult): whether the run
  // was SCC-scheduled, which summary keys it consumed/produced, and the
  // reuse counters — replayed so a cached result stays bit-identical.
  bool Scheduled = false;
  std::vector<std::uint64_t> SummaryKeys;
  int NumSummariesApplied = 0;
  int NumSCCsSolved = 0;
  int NumWaves = 0;
  int MaxWaveWidth = 0;

  /// Line-oriented text form with a format-version header, the writing
  /// build's fingerprint, and a trailing integrity checksum.
  std::string serialize(std::uint64_t Key) const;
  /// Parses and integrity-checks; nullopt on any mismatch (including a
  /// key that differs from \p Key — a renamed or cross-linked file).
  /// \p Stale, when non-null, is set when the entry is intact but was
  /// written under a different format version or build fingerprint — a
  /// clean stale miss, not corruption.
  static std::optional<CacheEntry> deserialize(const std::string &Text,
                                               std::uint64_t Key,
                                               bool *Stale = nullptr);
};

/// True when \p R is a deterministic outcome the cache may store.
bool cacheableResult(const AnalysisResult &R);
/// Packs a cacheable result into an entry.
CacheEntry entryFromResult(const AnalysisResult &R);
/// Unpacks an entry into the result a fresh generate+solve would have
/// produced (FromCache set; timings and check-stage fields are the
/// caller's to stamp).
AnalysisResult resultFromEntry(const CacheEntry &E);

/// Re-validates a cached success against a freshly materialized
/// constraint system: re-walks the IR under the same metric/options,
/// evaluates every recorded constraint at the cached values, checks
/// coefficient non-negativity, and that the cached bounds equal the entry
/// potentials.  This is the validator's check, run without the LP; it
/// costs one derivation walk.
bool verifyCacheEntry(const IRProgram &P, const ResourceMetric &M,
                      const AnalysisOptions &O, const CacheEntry &E);

/// Counters of one AnalysisCache (snapshot under the cache's lock).
struct CacheStats {
  long Lookups = 0;
  long Hits = 0;       ///< served (memory + disk)
  long DiskHits = 0;   ///< of Hits, loaded from the backing store
  long Misses = 0;
  long Stores = 0;
  long CorruptEntries = 0; ///< disk entries that failed integrity checks
  long StaleFormat = 0;    ///< intact entries from a foreign format/build
  long VerifyRejects = 0;  ///< hits rejected by certificate re-validation
  long FlushFailures = 0;  ///< durable disk writes that failed (memory
                           ///< store stands; durability only)
};

/// A thread-safe content-addressed store of analysis outcomes, optionally
/// backed by a directory of one-file-per-entry serialized records.  Disk
/// writes go through a temp file + rename, so concurrent runs sharing a
/// directory see only whole entries.
class AnalysisCache {
public:
  /// \p DiskDir empty means in-memory only.  The directory is created on
  /// first store if missing.
  explicit AnalysisCache(std::string DiskDir = "");

  /// Memory first, then the backing store.  A disk entry that fails the
  /// integrity check (or dies on the injected CacheLoad fault) counts as
  /// corrupt and the lookup misses — the caller re-analyzes.
  std::optional<CacheEntry> lookup(std::uint64_t Key);

  /// Returns false when the key was already present (a concurrent job of
  /// the same content won the race) — the entry is unchanged then.
  bool store(std::uint64_t Key, const CacheEntry &E);

  /// Counts a hit the caller rejected after certificate re-validation.
  void noteVerifyReject();

  CacheStats stats() const;
  const std::string &dir() const { return Dir; }

private:
  std::string entryPath(std::uint64_t Key) const;

  mutable std::mutex Mu;
  std::string Dir;
  std::map<std::uint64_t, CacheEntry> Mem;
  CacheStats Stats;
};

} // namespace c4b

#endif // C4B_PIPELINE_CACHE_H
