//===--- IR.h - Normalized Clight-like intermediate form --------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate representation the derivation system of the paper
/// (Figure 4) operates on:
///
///   * a single unified `loop S` construct exited by `break` (Clight style);
///   * assignments restricted to `x <- a` and `x <- x ± a` for an atom `a`
///     (variable or integer constant); anything non-linear becomes a `Kill`
///     assignment that the analysis treats as producing an unknown value;
///   * side-effect-free conditions normalized to a single comparison (with
///     a linear form when one exists), the non-deterministic `*`, or `true`;
///   * calls whose arguments are atoms, `tick(q)`, `assert`.
///
/// Lowering from the AST introduces cost-free temporaries exactly as the
/// paper describes ("a Clight program is converted into this form prior to
/// analysis without changing the resource cost").
///
//===----------------------------------------------------------------------===//

#ifndef C4B_IR_IR_H
#define C4B_IR_IR_H

#include "c4b/ast/AST.h"
#include "c4b/support/Rational.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace c4b {

//===----------------------------------------------------------------------===//
// Atoms and linear forms
//===----------------------------------------------------------------------===//

/// A variable or an integer constant; the operands of normalized
/// assignments and calls, and the endpoints of potential intervals.
struct Atom {
  enum class Kind { Var, Const } K = Kind::Const;
  std::string Name;         // Var.
  std::int64_t Value = 0;   // Const.

  static Atom makeVar(std::string N) {
    Atom A;
    A.K = Kind::Var;
    A.Name = std::move(N);
    return A;
  }
  static Atom makeConst(std::int64_t V) {
    Atom A;
    A.K = Kind::Const;
    A.Value = V;
    return A;
  }

  bool isVar() const { return K == Kind::Var; }
  bool isConst() const { return K == Kind::Const; }

  bool operator==(const Atom &B) const {
    return K == B.K && Name == B.Name && Value == B.Value;
  }
  bool operator<(const Atom &B) const {
    if (K != B.K)
      return K < B.K;
    if (K == Kind::Var)
      return Name < B.Name;
    return Value < B.Value;
  }

  std::string toString() const {
    return isVar() ? Name : std::to_string(Value);
  }
};

/// An integer affine form `sum Coeffs[v]*v + Const` over variable names.
struct LinExprInt {
  std::map<std::string, std::int64_t> Coeffs;
  std::int64_t Const = 0;

  bool isConstant() const { return Coeffs.empty(); }
  void add(const std::string &V, std::int64_t C) {
    auto It = Coeffs.emplace(V, 0).first;
    It->second += C;
    if (It->second == 0)
      Coeffs.erase(It);
  }
  std::string toString() const;
};

/// Attempts to view \p E as an affine integer form (fails on `*`, `/`, `%`,
/// array reads, and non-constant products).
std::optional<LinExprInt> linearizeExpr(const Expr &E);

/// A normalized linear comparison `E <op> 0`.
struct LinCmp {
  enum class Op { Le0, Eq0, Ne0 } O = Op::Le0;
  LinExprInt E;

  /// The logical negation, when representable (`Le0` negates to a `Le0`
  /// over integers; `Eq0`/`Ne0` swap).
  LinCmp negated() const;
  std::string toString() const;
};

/// A normalized condition: `true`, the non-deterministic `*`, or a single
/// comparison that carries an evaluable expression plus an optional linear
/// form for the abstract interpreter.
struct SimpleCond {
  enum class Kind { True, Nondet, Cmp } K = Kind::True;
  std::unique_ptr<Expr> E;    ///< Cmp only: the expression to evaluate.
  std::optional<LinCmp> Lin;  ///< Cmp only: linear form when one exists.

  static SimpleCond makeTrue() { return SimpleCond{}; }
  static SimpleCond makeNondet() {
    SimpleCond C;
    C.K = Kind::Nondet;
    return C;
  }

  SimpleCond clone() const;
  std::string toString() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Discriminator for IRStmt.
enum class IRStmtKind {
  Skip,
  Block,   ///< Sequencing.
  Assign,  ///< Normalized assignment (see AssignKind).
  Store,   ///< a[i] <- v (no potential effect; evaluated by the semantics).
  If,      ///< if (SimpleCond) Children[0] else Children[1].
  Loop,    ///< loop Children[0]; exits via Break.
  Break,
  Return,  ///< With optional atom value.
  Tick,
  Assert,  ///< assert(SimpleCond): runtime-checked, assumed by the analysis.
  Call,    ///< [r =] f(atoms...).
};

/// The shapes of normalized assignments.
enum class AssignKind {
  Set,  ///< x <- a.
  Inc,  ///< x <- x + a.
  Dec,  ///< x <- x - a.
  Kill, ///< x <- (non-linear expression); value unknown to the analysis.
};

/// One IR statement.  A single tagged struct in the LLVM tradition of
/// kind-discriminated nodes; only the fields of the active kind are
/// meaningful.
struct IRStmt {
  IRStmtKind Kind;
  SourceLoc Loc;

  std::vector<std::unique_ptr<IRStmt>> Children;

  // Assign.
  AssignKind Asg = AssignKind::Set;
  std::string Target;
  Atom Operand;                    ///< Set/Inc/Dec.
  std::unique_ptr<Expr> KillValue; ///< Kill: evaluated by the semantics.
  bool CostFree = false;           ///< Lowering temp: exempt from Mu/Me.

  // Store.
  std::string ArrayName;
  std::unique_ptr<Expr> Index, StoreValue;

  // If / Assert.
  SimpleCond Cond;

  // Return.
  bool HasRetValue = false;
  Atom RetValue;

  // Tick.
  Rational TickAmount;

  // Call.
  std::string Callee;
  std::vector<Atom> Args;
  std::string ResultVar; ///< Empty when the result is discarded.

  explicit IRStmt(IRStmtKind K) : Kind(K) {}
};

//===----------------------------------------------------------------------===//
// Functions and programs
//===----------------------------------------------------------------------===//

/// A lowered function.
struct IRFunction {
  std::string Name;
  std::vector<std::string> Params;
  bool ReturnsValue = false;
  std::vector<std::string> Locals; ///< Declared locals plus lowering temps.
  std::map<std::string, std::int64_t> LocalArrays; ///< name -> size.
  std::unique_ptr<IRStmt> Body;
  SourceLoc Loc;

  bool isLocalScalar(const std::string &N) const;
};

/// A lowered program.
struct IRProgram {
  std::map<std::string, std::int64_t> Globals;      ///< name -> init value.
  std::map<std::string, std::int64_t> GlobalArrays; ///< name -> size.
  std::vector<IRFunction> Functions;

  const IRFunction *findFunction(const std::string &Name) const;
};

/// Lowers a parsed program.  Reports problems (unknown callee, bad arity,
/// assignments to undeclared variables, ...) through \p Diags and returns
/// nullopt when any error was raised.
std::optional<IRProgram> lowerProgram(const Program &P,
                                      DiagnosticEngine &Diags);

/// Renders the IR for debugging and golden tests.
std::string printIR(const IRStmt &S, int Indent = 0);
std::string printIR(const IRFunction &F);
std::string printIR(const IRProgram &P);

//===----------------------------------------------------------------------===//
// Call graph
//===----------------------------------------------------------------------===//

/// Call-graph SCCs in bottom-up (callee-first) topological order, computed
/// with Tarjan's algorithm.  The analysis processes one SCC at a time and
/// treats calls within an SCC as (mutually) recursive.
///
/// Beyond the member/SCC maps, the graph carries its condensation DAG in
/// scheduling form: per-SCC cross-SCC dependency sets and the wave
/// partition derived from them.  Wave k holds exactly the SCCs all of
/// whose cross-SCC callees sit in waves < k, so the SCCs of one wave are
/// mutually independent and can be analyzed concurrently once every
/// earlier wave is done.  The scheduled interprocedural analysis walks
/// waves in order; the summary cache uses the reverse edges to decide
/// which SCCs a function edit transitively invalidates.
struct CallGraph {
  /// SCCs in bottom-up order; entries are function names.
  std::vector<std::vector<std::string>> SCCs;
  /// Direct callees of each function.
  std::map<std::string, std::set<std::string>> Callees;

  /// Index of the SCC containing each function.
  std::map<std::string, int> SCCOf;

  /// Condensation edges: SCCDeps[I] holds the SCC indices this SCC calls
  /// into (cross-SCC only; always < I by the bottom-up order).
  std::vector<std::set<int>> SCCDeps;
  /// Reverse condensation edges: the SCCs that call directly into SCC I.
  std::vector<std::set<int>> SCCRevDeps;
  /// Wave level of each SCC: 0 for leaves, 1 + max callee wave otherwise.
  std::vector<int> WaveOf;
  /// SCC indices grouped by wave; Waves[k] is ready once waves < k are
  /// done.  Within a wave, indices are ascending (deterministic order).
  std::vector<std::vector<int>> Waves;

  /// True when \p Caller and \p Callee belong to the same SCC.
  bool inSameSCC(const std::string &Caller, const std::string &Callee) const;

  /// The SCC indices that transitively call into SCC \p I (excluding I
  /// itself): the set an edit to a member of I invalidates.
  std::set<int> transitiveCallers(int I) const;
};

CallGraph buildCallGraph(const IRProgram &P);

} // namespace c4b

#endif // C4B_IR_IR_H
