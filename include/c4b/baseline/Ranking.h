//===--- Ranking.h - Classical ranking-function baseline --------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately classical bound analyzer in the style the paper
/// attributes to Rank/KoAT/LOOPUS (Sections 1 and 3): one linear ranking
/// function per loop taken from the loop guard, additive composition of
/// sequenced loops, multiplicative composition of nested loops, and no
/// function abstraction (callees are inlined).  It exists as the
/// comparison point for the Figure 8 / Table 1 / Table 3 benchmarks: it
/// succeeds on regular counting loops but loses precision (or fails) on
/// amortized, sequenced-interaction, and recursion patterns -- which is
/// exactly the gap the amortized analysis closes.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_BASELINE_RANKING_H
#define C4B_BASELINE_RANKING_H

#include "c4b/ir/IR.h"
#include "c4b/sem/Metric.h"

#include <string>

namespace c4b {

/// Result of the classical analysis on one function.
struct RankingResult {
  bool Found = false;
  /// Polynomial degree of the bound (1 = linear, 2 = quadratic, ...).
  int Degree = 0;
  /// Human-readable bound expression over the function inputs, e.g.
  /// "41*max(0, x - j) * max(0, y)".
  std::string Expr;
  /// Why the analysis failed, when it did.
  std::string FailureReason;
};

/// Runs the ranking-function baseline on \p Fn under metric \p M
/// (tick costs and back-edge costs are supported).
RankingResult analyzeRanking(const IRProgram &P, const std::string &Fn,
                             const ResourceMetric &M);

} // namespace c4b

#endif // C4B_BASELINE_RANKING_H
