//===--- Context.h - Logical contexts of linear inequalities ----*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract program state of Section 3: a logical context Gamma is a
/// conjunction of linear inequalities over program variables (or bottom for
/// unreachable points).  The derivation rules consult Gamma for
///
///   * operand signs (Q:INCP/Q:DECP vs. their negative duals),
///   * the U sets of the increment/decrement rules, and
///   * constant interval bounds for the RELAX weakening.
///
/// Entailment and optimization queries are answered with the exact LP
/// solver; rational reasoning is sound for the integer-valued programs
/// (rational entailment implies integer entailment), and integer-valued
/// objectives are tightened by flooring.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_LOGIC_CONTEXT_H
#define C4B_LOGIC_CONTEXT_H

#include "c4b/ir/IR.h"
#include "c4b/support/Rational.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace c4b {

/// Per-thread counters of the query-avoidance layer: every entailment /
/// bound / feasibility query a LogicContext answers is attributed to one
/// of the buckets.  Like lpThreadStats, nothing ever resets them; stages
/// snapshot-and-subtract.
struct QueryStats {
  long Queries = 0;    ///< total context queries issued
  long Tier1Hits = 0;  ///< answered syntactically (no LP, no memo)
  long Tier2Hits = 0;  ///< answered from the memoized-query cache
  long LpFallbacks = 0; ///< fell through to an exact LP solve
  // Cost-slicing counters, accumulated by the derivation walk on the same
  // snapshot-and-subtract discipline as the query buckets above.
  long StmtsSliced = 0;       ///< statements skipped as cost-dead
  long CallsCollapsed = 0;    ///< PureZero call sites collapsed to identity
  long ConstraintsAvoided = 0; ///< estimated constraint rows not emitted
};

/// The calling thread's running query counters.
QueryStats &queryThreadStats();

/// RAII switch for the query-avoidance layer on this thread (default on).
/// Both tiers are exact — answers are identical with the layer off — so
/// the switch exists only for differential tests and benchmarks.
class QueryAvoidanceScope {
public:
  explicit QueryAvoidanceScope(bool Enabled);
  ~QueryAvoidanceScope();
  QueryAvoidanceScope(const QueryAvoidanceScope &) = delete;
  QueryAvoidanceScope &operator=(const QueryAvoidanceScope &) = delete;

private:
  bool Prev;
};

/// True when the query-avoidance layer is enabled on this thread.
bool queryAvoidanceEnabled();

/// Clears this thread's memoized-query tables (tier 2).  The derivation
/// walk calls this on entry so memo hits are a pure function of one walk:
/// reuse never crosses an analysis boundary, keeping pivot spend — and
/// therefore budget kill points — independent of what ran earlier on the
/// worker thread (the batch analyzer's schedule-determinism contract).
void clearQueryMemo();

/// A linear fact `sum Coeffs[v]*v + Const <= 0` (or `== 0`).
struct LinFact {
  std::map<std::string, Rational> Coeffs;
  Rational Const;
  bool IsEquality = false;

  void add(const std::string &V, const Rational &C);
  bool mentions(const std::string &V) const { return Coeffs.contains(V); }
  std::string toString() const;
};

/// A rational affine objective used in bound queries.
struct AffineQ {
  std::map<std::string, Rational> Coeffs;
  Rational Const;

  void add(const std::string &V, const Rational &C);
};

/// A conjunction of LinFacts, or bottom.
class LogicContext {
public:
  static LogicContext top() { return LogicContext(); }
  static LogicContext bottom() {
    LogicContext C;
    C.Bottom = true;
    return C;
  }

  bool isBottom() const;

  const std::vector<LinFact> &facts() const { return Facts; }

  /// Conjoins a fact.
  void assume(LinFact F);
  /// Conjoins a normalized guard; `Ne0` adds nothing (disjunctive).
  void assumeCmp(const LinCmp &C);

  /// Existentially projects \p Var out (Fourier-Motzkin, with a size cap
  /// beyond which facts mentioning Var are simply dropped).
  void havoc(const std::string &Var);

  /// Transfer of `x <- a`.
  void applySet(const std::string &X, const Atom &A);
  /// Transfer of `x <- x ± a`.
  void applyIncDec(const std::string &X, const Atom &A, bool Inc);
  /// Transfer of a call: havocs the result variable and modified globals.
  void applyCall(const std::string &ResultVar,
                 const std::set<std::string> &ModifiedGlobals);

  /// True when every model of this context satisfies `F` (rational
  /// entailment; sound for integers).
  bool entails(const LinFact &F) const;

  /// Supremum of the objective over the context; nullopt when unbounded
  /// (or when the context is bottom, where any bound holds -- callers get
  /// Rational 0 via entails-style special casing; see implementation).
  std::optional<Rational> maxOf(const AffineQ &Obj) const;
  std::optional<Rational> minOf(const AffineQ &Obj) const;

  /// Both extrema in one query: {maxOf(Obj), minOf(Obj)}.  The two solves
  /// share one simplex instance, so the second restarts warm from the
  /// first's optimal basis instead of rebuilding and re-running phase 1.
  std::pair<std::optional<Rational>, std::optional<Rational>>
  rangeOf(const AffineQ &Obj) const;

  /// Join: keeps facts entailed by both sides.
  static LogicContext join(const LogicContext &A, const LogicContext &B);

  /// The "rough loop invariant" of the paper: drops every fact mentioning a
  /// variable in \p Modified.
  LogicContext dropMentioning(const std::set<std::string> &Modified) const;

  /// A content stamp: two contexts with the same version have identical
  /// facts (copies share the version; any mutation refreshes it).  Used to
  /// memoize interval-bound queries.
  long version() const { return Version; }

  /// True when no fact mentions \p V (fast path for bound queries).
  bool mentionsVar(const std::string &V) const;

  std::string toString() const;

private:
  std::vector<LinFact> Facts;
  bool Bottom = false;
  long Version = 0;
  // Lazily computed feasibility cache (mutable: isBottom is logically const).
  mutable bool FeasChecked = false;
  mutable bool FeasResult = true;

  /// Lazily built syntactic index over the (canonicalized) facts: the
  /// tier-1 fast paths and the tier-2 content stamp both read it.  Built
  /// at most once per version; copies share it (same facts by contract).
  struct QueryIndex;
  mutable std::shared_ptr<const QueryIndex> Index;

  const QueryIndex &index() const;
  /// Fast-path answers: the outer optional is "no fast answer, run the
  /// exact path"; the inner value is exactly what the LP would return.
  std::optional<std::optional<Rational>> fastMax(const AffineQ &Obj) const;
  std::optional<std::pair<std::optional<Rational>, std::optional<Rational>>>
  fastRange(const AffineQ &Obj) const;
  std::optional<Rational> maxOfLp(const AffineQ &Obj) const;
  std::pair<std::optional<Rational>, std::optional<Rational>>
  rangeOfLp(const AffineQ &Obj) const;

  void invalidate();
  void pruneTrivial();
};

/// The difference `val(B) - val(A)` of two atoms as an LP objective
/// (constant atoms contribute constants).
AffineQ intervalObjective(const Atom &A, const Atom &B);

/// Constant bounds on the interval size `|[A,B]| = max(0, B - A)` derivable
/// from a context.  `Lo` is always present (at least 0); `Hi` may be absent.
struct IntervalBounds {
  Rational Lo;
  std::optional<Rational> Hi;
};

IntervalBounds intervalBoundsIn(const LogicContext &Ctx, const Atom &A,
                                const Atom &B);

/// Globals (transitively) written by each function; used by the call
/// transfer and the Q:CALL rule.
std::map<std::string, std::set<std::string>>
computeModifiedGlobals(const IRProgram &P, const CallGraph &G);

} // namespace c4b

#endif // C4B_LOGIC_CONTEXT_H
