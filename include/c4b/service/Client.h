//===--- Client.h - Blocking c4bd client ------------------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the c4bd daemon: connect to the unix
/// socket, exchange length-prefixed JSON frames, surface transport
/// failures as typed outcomes (the same exitcode:: values c4b-client maps
/// to process exit codes).  One Client holds one connection; call() can
/// be issued repeatedly on it (the protocol is persistent until the
/// server reaps the connection as idle).
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SERVICE_CLIENT_H
#define C4B_SERVICE_CLIENT_H

#include "c4b/service/Protocol.h"

#include <optional>
#include <string>

namespace c4b {
namespace service {

/// Outcome of one call: either a decoded Response, or a transport-level
/// failure (socket/timeout/framing) with the exit code to report.
struct CallResult {
  std::optional<Response> Resp;
  /// When !Resp: exitcode::{ConnectFailed,Timeout,ProtocolError} and a
  /// one-line reason.
  int TransportExit = 0;
  std::string TransportError;

  bool ok() const { return Resp && Resp->Ok; }
  /// The process exit code this outcome maps to (0 on success).
  int exitCode() const { return Resp ? Resp->ExitCode : TransportExit; }
};

class Client {
public:
  /// \p TimeoutMs governs connect and each frame read/write (total time
  /// per frame, not per byte); <= 0 waits indefinitely.
  explicit Client(std::string SocketPath, int TimeoutMs = 10000);
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects (idempotent).  False with \p Err set on failure.
  bool connect(std::string *Err = nullptr);
  bool connected() const { return Fd >= 0; }
  void close();

  /// Sends \p R and reads one response.  Connects lazily when needed.
  CallResult call(const Request &R);

private:
  std::string Path;
  int TimeoutMs;
  int Fd = -1;
};

} // namespace service
} // namespace c4b

#endif // C4B_SERVICE_CLIENT_H
