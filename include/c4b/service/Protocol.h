//===--- Protocol.h - c4bd wire protocol ------------------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the c4bd analysis daemon: length-prefixed JSON
/// frames over a unix-domain stream socket.
///
/// Framing: every message is a 4-byte big-endian payload length followed
/// by exactly that many bytes of UTF-8 JSON.  Frames above MaxFrameBytes
/// are rejected before any allocation — a garbage prefix cannot make the
/// server reserve gigabytes.  All reads and writes are governed by
/// poll(2) timeouts so a slow or dead peer costs a bounded amount of one
/// worker's time, never a wedged thread.
///
/// The JSON dialect is the minimal one the daemon needs (null, bool,
/// number, string, array, object; no \uXXXX escapes beyond pass-through).
/// JsonValue is both the parser's output and the writer's input; encoding
/// is deterministic (object keys keep insertion order) so differential
/// tests can compare frames byte for byte.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SERVICE_PROTOCOL_H
#define C4B_SERVICE_PROTOCOL_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace c4b {
namespace service {

//===----------------------------------------------------------------------===//
// Minimal JSON value
//===----------------------------------------------------------------------===//

/// A tagged JSON value.  Numbers are doubles (every counter the protocol
/// carries fits in the 53-bit mantissa); object member order is
/// preserved, making dump() deterministic.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  static JsonValue boolean(bool B);
  static JsonValue number(double N);
  static JsonValue str(std::string S);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return K; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  /// Scalar reads with defaults; a kind mismatch yields the default (the
  /// server treats a mistyped field like a missing one).
  bool asBool(bool Def = false) const;
  double asNumber(double Def = 0) const;
  const std::string &asString(const std::string &Def) const;

  /// Object member by key; null when absent or not an object.
  const JsonValue *get(const std::string &Key) const;
  /// Sets (or replaces) an object member; turns a Null value into {}.
  JsonValue &set(const std::string &Key, JsonValue V);
  /// Appends to an array; turns a Null value into [].
  JsonValue &push(JsonValue V);

  const std::vector<JsonValue> &items() const { return Arr; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Obj;
  }

  /// Deterministic single-line encoding.
  std::string dump() const;

  /// Strict parse of one JSON document (trailing garbage is an error).
  /// On failure returns nullopt and, when \p Err is non-null, a one-line
  /// reason with a byte offset.
  static std::optional<JsonValue> parse(const std::string &Text,
                                        std::string *Err = nullptr);

private:
  Kind K;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

/// Upper bound on one frame's payload (16 MiB) — admission control at the
/// protocol layer.
constexpr std::uint32_t MaxFrameBytes = 16u << 20;

/// Outcome of one framed read/write.
enum class IoStatus {
  Ok,
  Timeout,  ///< The poll deadline passed mid-frame (slow peer).
  Closed,   ///< Orderly EOF (or EPIPE on write) — the peer went away.
  TooLarge, ///< Length prefix exceeds MaxFrameBytes; the stream is junk.
  Error,    ///< Any other socket error.
};

/// Human-readable IoStatus, for diagnostics.
const char *ioStatusName(IoStatus S);

/// Reads one length-prefixed frame into \p Out.  \p TimeoutMs bounds the
/// *total* wall time of the read (not per-byte), so a byte-at-a-time
/// trickler cannot hold a worker forever; <= 0 means wait indefinitely.
IoStatus readFrame(int Fd, std::string &Out, int TimeoutMs);

/// Writes one frame (prefix + payload) under the same total-time bound.
/// Uses MSG_NOSIGNAL: a dead peer is a Closed return, never SIGPIPE.
IoStatus writeFrame(int Fd, const std::string &Payload, int TimeoutMs);

//===----------------------------------------------------------------------===//
// Exit codes
//===----------------------------------------------------------------------===//

/// Service-level outcome codes, carried in Response::ExitCode and mapped
/// to process exit codes by c4b-client.  Analysis failures use the
/// per-kind codes of exitCodeFor (10-17); these cover everything the
/// service layer itself can reject, plus client-side transport failures.
/// They deliberately stay below 10 so the two ranges cannot collide.
namespace exitcode {
constexpr int BadRequest = 2;    ///< unparseable or malformed request
constexpr int UnknownEntity = 3; ///< query for an unknown module/function
constexpr int Overloaded = 4;    ///< admission queue full
constexpr int Draining = 5;      ///< server draining; no new connections
constexpr int ConnectFailed = 6; ///< client: socket connect failed
constexpr int Timeout = 7;       ///< client: request or response timed out
constexpr int ProtocolError = 8; ///< client: framing/JSON error, early EOF
} // namespace exitcode

//===----------------------------------------------------------------------===//
// Requests and responses
//===----------------------------------------------------------------------===//

/// One client request.  Cmd selects the operation; the rest are
/// command-specific (unused fields are simply not encoded).
struct Request {
  /// "analyze" | "query" | "stats" | "drain" | "shutdown".
  std::string Cmd;
  /// analyze: module name (cache/result label) and source text.
  std::string Name;
  std::string Source;
  /// analyze: optional focus function for the LP objective.
  std::string Focus;
  /// query: module name (Name) + function whose bound to fetch.
  std::string Function;
  /// analyze (tests only): arm a one-shot thread-local fault at this
  /// site for the dispatched job — "pivot", "constraint", ... (see
  /// faultinject::siteByName).  Ignored unless the server was started
  /// with EnableTestCommands.
  std::string InjectSite;
  long InjectAfter = 1;
  /// analyze (tests only): milliseconds to wedge the worker before
  /// dispatch — the watchdog test's lever.  Same gate as InjectSite.
  long HangMs = 0;

  std::string encode() const;
  static std::optional<Request> decode(const std::string &Payload,
                                       std::string *Err = nullptr);
};

/// One server response.  Ok=false carries a typed reason: ErrKind is
/// either an AnalysisErrorKind name ("LpBudgetExceeded", ...) for
/// per-request analysis failures or a service-level rejection
/// ("Overloaded", "Draining", "BadRequest", "UnknownFunction").
struct Response {
  bool Ok = false;
  std::string Error;
  std::string ErrKind;
  /// The exit code a CLI should map this outcome to (0 on success).
  int ExitCode = 0;
  /// analyze/query: certified bound per function (degraded: uncertified
  /// ranking-function expressions, flagged below).
  std::map<std::string, std::string> Bounds;
  bool Degraded = false;
  bool FromCache = false;
  /// Numeric payload: per-request counters for analyze (sccs_solved,
  /// summaries_reused, ...), the full stats dump for stats.
  std::map<std::string, double> Counters;

  std::string encode() const;
  static std::optional<Response> decode(const std::string &Payload,
                                        std::string *Err = nullptr);
};

} // namespace service
} // namespace c4b

#endif // C4B_SERVICE_PROTOCOL_H
