//===--- Server.h - The c4bd analysis daemon --------------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analysis as a service: a long-lived unix-socket daemon that keeps the
/// tier-3 AnalysisCache and the SummaryStore resident, so a re-submitted
/// module replays from cache and an *edited* module re-solves only the
/// dirty SCCs and their transitive callers (summary keys fold callee
/// keys, so invalidation is transitive by construction — the daemon adds
/// no invalidation logic of its own).
///
/// Failure domains, from the outside in:
///
///  - The *process* never dies for a request's sake.  Admission control
///    bounds the connection queue (typed Overloaded rejection), frames
///    are size-capped, reads/writes are poll-timed (slow clients are
///    dropped, idle ones reaped), and a watchdog fails requests that
///    outlive their deadline by shutting down the *connection* — never
///    the worker's thread, which the cooperative budget will reclaim.
///  - The *request* is the unit of analysis failure.  Each dispatch runs
///    through BatchAnalyzer(1) — the exact serial pipeline with per-job
///    BudgetScope and exception containment — so bounds are bit-identical
///    to the one-shot CLI and a budget kill or injected fault becomes a
///    typed response, not a dead connection.
///  - Under load (admitted depth at/past DegradeQueueDepth) analyze
///    requests run with FallbackToRanking: budget kills degrade to
///    uncertified ranking bounds instead of hard failures.
///  - On startup the daemon scans its cache/summary directories and
///    quarantines entries that fail their integrity checksum (renamed to
///    `*.quarantine`), distinguishing them from clean stale-format
///    entries; leftover temp files from a crashed writer are reaped.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SERVICE_SERVER_H
#define C4B_SERVICE_SERVER_H

#include "c4b/analysis/Analyzer.h"
#include "c4b/analysis/Summary.h"
#include "c4b/pipeline/Cache.h"
#include "c4b/service/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace c4b {
namespace service {

/// Daemon configuration.  The defaults are test-friendly; c4bd overrides
/// them from flags.
struct ServerOptions {
  /// Unix-socket path (required; sun_path caps it at ~107 bytes).
  std::string SocketPath;
  /// Worker threads serving admitted connections.
  int NumWorkers = 2;
  /// Admitted-but-unserved connection cap; past it, accepts are answered
  /// with a typed Overloaded response and closed.
  int MaxQueue = 8;
  /// Total-time bounds for one request frame read / response write.
  int ReadTimeoutMs = 5000;
  int WriteTimeoutMs = 5000;
  /// A connection with no request for this long is reaped.
  int IdleTimeoutMs = 5000;
  /// Per-request cooperative budget (0 disables a limit).
  double RequestDeadlineSeconds = 30.0;
  long MaxPivots = 0;
  long MaxConstraints = 0;
  /// Admitted queue depth at which analyze requests run with the
  /// ranking-function fallback armed (0 = never degrade).
  int DegradeQueueDepth = 0;
  /// A dispatched request older than this is failed by shutting down its
  /// connection (0 disables the watchdog).  Set well above the request
  /// deadline: the cooperative budget is the first line, this the
  /// backstop for wedged workers.
  double WatchdogSeconds = 0;
  /// Resident tier-3 cache / summary-store directories (empty =
  /// memory-only; both stores are write-through durable).
  std::string CacheDir;
  std::string SummaryDir;
  /// Scheduled interprocedural analysis for analyze requests (the
  /// incremental path; off falls back to the monolithic pipeline).
  bool Scheduling = true;
  /// Honor the test-only request fields (inject_site, hang_ms).  Off in
  /// production: the fields are then ignored.
  bool EnableTestCommands = false;
};

/// What the startup crash-recovery scan found.
struct RecoveryReport {
  long CacheEntriesOk = 0;
  long CacheQuarantined = 0; ///< failed checksum; renamed *.quarantine
  long CacheStale = 0;       ///< foreign format/build; left for lookup to skip
  long SummaryEntriesOk = 0;
  long SummaryQuarantined = 0;
  long SummaryStale = 0;
  long TmpReaped = 0; ///< torn temp files from a crashed writer, unlinked
};

/// Daemon counters (monotonic; snapshot via BoundsServer::stats).
struct ServerStats {
  long Accepted = 0;
  long Overloaded = 0;       ///< connections rejected by admission control
  long DrainRejected = 0;    ///< connections rejected while draining
  long Requests = 0;
  long BadRequests = 0;
  long AnalyzeOk = 0;
  long AnalyzeFailed = 0;
  long AnalyzeDegraded = 0;
  long QueryOk = 0;
  long QueryMiss = 0;
  long SlowClientDrops = 0;  ///< read/write timeouts → connection dropped
  long IdleReaped = 0;
  long WatchdogKills = 0;
  long InjectedFaults = 0;   ///< service-site faults absorbed (accept/read/
                             ///< dispatch); analysis-site faults count as
                             ///< AnalyzeFailed instead
};

/// The daemon.  start() binds and spawns the acceptor, workers, and
/// watchdog; wait() blocks until a shutdown (command or requestShutdown)
/// has drained in-flight work and joined every thread.
class BoundsServer {
public:
  explicit BoundsServer(ServerOptions O);
  ~BoundsServer();

  BoundsServer(const BoundsServer &) = delete;
  BoundsServer &operator=(const BoundsServer &) = delete;

  /// Binds the socket (unlinking a stale one), runs the crash-recovery
  /// scan, and spawns the service threads.  False (with \p Err set) on
  /// socket errors.
  bool start(std::string *Err = nullptr);

  /// Blocks until the daemon has shut down and all threads are joined.
  void wait();

  /// Stops admitting new connections; queued and in-flight requests run
  /// to completion.  Async-signal-safe (atomic store + self-pipe write).
  void requestDrain();

  /// Drain, then exit the service loops (wait() returns).  Also
  /// async-signal-safe — this is the SIGTERM/SIGINT path.
  void requestShutdown();

  bool running() const { return Running.load(std::memory_order_acquire); }
  bool draining() const { return Draining.load(std::memory_order_acquire); }

  ServerStats stats() const;
  const RecoveryReport &recovery() const { return Recovery; }
  const ServerOptions &options() const { return Opts; }

  /// The resident stores (tests and the warm-incremental bench inspect
  /// their counters directly).
  std::shared_ptr<AnalysisCache> cache() const { return Cache; }
  std::shared_ptr<SummaryStore> summaries() const { return Summaries; }

private:
  struct WorkerState {
    std::atomic<int> ConnFd{-1};
    /// Seconds-since-steady-epoch when the active request was admitted
    /// to dispatch; 0 when idle.  Read by the watchdog.
    std::atomic<double> BusySince{0};
  };

  void acceptorLoop();
  void workerLoop(int Index);
  void watchdogLoop();
  void serveConnection(int Fd, WorkerState &St);
  Response handleRequest(const Request &R, bool Degrade);
  Response handleAnalyze(const Request &R, bool Degrade);
  Response handleQuery(const Request &R);
  Response handleStats();
  void runRecoveryScan();
  void wakeAcceptor();

  ServerOptions Opts;
  std::shared_ptr<AnalysisCache> Cache;
  std::shared_ptr<SummaryStore> Summaries;
  RecoveryReport Recovery;

  int ListenFd = -1;
  int WakePipe[2] = {-1, -1};

  std::atomic<bool> Running{false};
  std::atomic<bool> Draining{false};
  std::atomic<bool> ShuttingDown{false};

  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<int> Pending; ///< admitted connection fds

  std::thread Acceptor;
  std::vector<std::thread> Workers;
  std::thread Watchdog;
  std::vector<std::unique_ptr<WorkerState>> WorkerStates;

  mutable std::mutex StatsMu;
  ServerStats Stats;

  mutable std::mutex ResultsMu;
  /// Last analysis per module name, served by the query command.
  std::map<std::string, AnalysisResult> LastResults;
};

} // namespace service
} // namespace c4b

#endif // C4B_SERVICE_SERVER_H
