//===--- Presolve.h - Equality-elimination LP presolver ---------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint systems produced by the amortized analysis consist almost
/// entirely of sparse equalities (most potential coefficients pass through
/// a statement unchanged).  This presolver eliminates such equalities by
/// Gaussian substitution before the simplex runs, shrinking systems with
/// thousands of variables down to the few dozen that carry real decisions,
/// and applies the classic row reductions on top: singleton rows implied
/// by non-negativity are dropped, singleton rows forcing a variable to
/// zero substitute it away, and duplicate rows are merged to their
/// tightest right-hand side.  This mirrors how production LP solvers such
/// as CLP stay fast on the paper's workload.
///
/// The reduced system is solved on a *live* SimplexInstance that persists
/// across minimize calls: the two-stage lexicographic optimization
/// (Section 5) pins the stage-1 optimum as a constraint the current vertex
/// already satisfies, so the stage-2 solve restarts warm from the stage-1
/// basis instead of paying a second phase 1.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_LP_PRESOLVE_H
#define C4B_LP_PRESOLVE_H

#include "c4b/lp/Solver.h"

#include <map>
#include <memory>
#include <set>
#include <vector>

namespace c4b {

/// An affine expression `sum Coef*Var + Const` used in substitutions.
struct AffineExpr {
  std::map<int, Rational> Terms;
  Rational Const;
};

/// A solver facade that presolves equalities away and supports the paper's
/// two-stage lexicographic minimization (Section 5): solve one objective,
/// pin its optimum as a constraint, then solve the next — warm.
///
/// All variables are non-negative; this is all the amortized analysis needs.
class PresolvedSolver {
public:
  int addVar(std::string Name = "");

  /// Adds `sum Terms R Rhs`; equalities may be eliminated by presolve.
  void addConstraint(std::vector<LinTerm> Terms, Rel R, Rational Rhs);

  int numVars() const { return NumVars; }

  /// Minimizes the objective over all constraints added so far, including
  /// any pins from pinObjective.  Values in the result cover every variable
  /// added through addVar.  Re-uses the live tableau of the previous call
  /// when only constraints the presolver did not eliminate were added
  /// since (the result's WarmStarted field reports it).
  LPResult minimize(const std::vector<LinTerm> &Objective);

  /// Adds the constraint `Objective <= Bound` (used to fix the stage-1
  /// optimum before the stage-2 solve).
  void pinObjective(const std::vector<LinTerm> &Objective, Rational Bound);

  /// Statistics for benchmarking the presolver.
  int numEliminated() const { return static_cast<int>(Subst.size()); }
  int numResidualConstraints() const { return static_cast<int>(Rows.size()); }
  /// Rows dropped because a singleton was implied by non-negativity.
  int numDroppedSingletons() const { return DroppedSingletons; }
  /// Variables fixed to zero by a `x <= 0` singleton.
  int numFixedVars() const { return FixedVars; }
  /// Rows merged into an earlier identical row (tightest RHS kept).
  int numDuplicateRows() const { return DuplicateRows; }

  /// Lifetime simplex work, across any cold rebuilds of the live instance.
  long totalPivots() const;
  long warmStarts() const;
  /// Shape of the live reduced system (zeros before the first solve).
  int tableauRows() const;
  int tableauCols() const;
  double tableauDensity() const;
  /// Basis refactorizations of the revised core (eta-budget trips plus
  /// staleness rebuilds), across any cold rebuilds of the live instance.
  long totalRefactors() const;
  /// Peak eta-file length any instance reached (bounded by the eta limit).
  int maxEtaLen() const;

private:
  int NumVars = 0;
  std::vector<std::string> Names;
  bool Infeasible = false;

  /// Flat substitutions: value references only unsubstituted variables.
  std::map<int, AffineExpr> Subst;
  /// Reverse index: variable -> substitution entries mentioning it.
  std::map<int, std::set<int>> Occurs;

  /// Residual constraints over unsubstituted variables (kept flat).
  std::vector<LinConstraint> Rows;
  /// Non-negativity side conditions for substituted variables whose
  /// defining expression is not syntactically non-negative.
  std::vector<AffineExpr> NonNegResiduals;

  // Presolve-extension counters.
  int DroppedSingletons = 0;
  int FixedVars = 0;
  int DuplicateRows = 0;

  // The live reduced instance and the state it was built from.  The
  // instance survives minimize calls while no new substitution has been
  // recorded (a substitution re-flattens every residual row, so the built
  // tableau would be stale); rows added since the build are spliced in
  // warm through SimplexInstance::addConstraint.
  std::unique_ptr<SimplexInstance> Live;
  std::map<int, int> Compact;               ///< original var -> instance var
  std::map<std::string, Rational> RowKeyRhs; ///< dedup: row key -> tightest rhs
  std::size_t RowsBuilt = 0;
  std::size_t NNBuilt = 0;
  std::size_t SubstAtBuild = 0;
  long RetiredPivots = 0;     ///< pivots of discarded instances
  long RetiredWarmStarts = 0; ///< warm starts of discarded instances
  long RetiredRefactors = 0;  ///< refactorizations of discarded instances
  int RetiredMaxEtaLen = 0;   ///< peak eta length of discarded instances

  AffineExpr flatten(const std::vector<LinTerm> &Terms,
                     const Rational &Const) const;
  void recordSubst(int Var, AffineExpr E);
  void addFlattened(AffineExpr A, Rel R);
  LPResult solveReduced(const std::vector<LinTerm> &Objective);
  int liveVarOf(int Var);
  bool warmEmit(AffineExpr A, Rel R);
};

} // namespace c4b

#endif // C4B_LP_PRESOLVE_H
