//===--- Presolve.h - Equality-elimination LP presolver ---------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint systems produced by the amortized analysis consist almost
/// entirely of sparse equalities (most potential coefficients pass through
/// a statement unchanged).  This presolver eliminates such equalities by
/// Gaussian substitution before the tableau simplex runs, shrinking systems
/// with thousands of variables down to the few dozen that carry real
/// decisions.  This mirrors how production LP solvers such as CLP stay fast
/// on the paper's workload.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_LP_PRESOLVE_H
#define C4B_LP_PRESOLVE_H

#include "c4b/lp/Solver.h"

#include <map>
#include <set>
#include <vector>

namespace c4b {

/// An affine expression `sum Coef*Var + Const` used in substitutions.
struct AffineExpr {
  std::map<int, Rational> Terms;
  Rational Const;
};

/// A solver facade that presolves equalities away and supports the paper's
/// two-stage lexicographic minimization (Section 5): solve one objective,
/// pin its optimum as a constraint, then solve the next.
///
/// All variables are non-negative; this is all the amortized analysis needs.
class PresolvedSolver {
public:
  int addVar(std::string Name = "");

  /// Adds `sum Terms R Rhs`; equalities may be eliminated by presolve.
  void addConstraint(std::vector<LinTerm> Terms, Rel R, Rational Rhs);

  int numVars() const { return NumVars; }

  /// Minimizes the objective over all constraints added so far, including
  /// any pins from pinObjective.  Values in the result cover every variable
  /// added through addVar.
  LPResult minimize(const std::vector<LinTerm> &Objective);

  /// Adds the constraint `Objective <= Bound` (used to fix the stage-1
  /// optimum before the stage-2 solve).
  void pinObjective(const std::vector<LinTerm> &Objective, Rational Bound);

  /// Statistics for benchmarking the presolver.
  int numEliminated() const { return static_cast<int>(Subst.size()); }
  int numResidualConstraints() const { return static_cast<int>(Rows.size()); }

private:
  int NumVars = 0;
  std::vector<std::string> Names;
  bool Infeasible = false;

  /// Flat substitutions: value references only unsubstituted variables.
  std::map<int, AffineExpr> Subst;
  /// Reverse index: variable -> substitution entries mentioning it.
  std::map<int, std::set<int>> Occurs;

  /// Residual constraints over unsubstituted variables (kept flat).
  std::vector<LinConstraint> Rows;
  /// Non-negativity side conditions for substituted variables whose
  /// defining expression is not syntactically non-negative.
  std::vector<AffineExpr> NonNegResiduals;

  AffineExpr flatten(const std::vector<LinTerm> &Terms,
                     const Rational &Const) const;
  void recordSubst(int Var, AffineExpr E);
  void addFlattened(AffineExpr A, Rel R);
  LPResult solveReduced(const std::vector<LinTerm> &Objective);
};

} // namespace c4b

#endif // C4B_LP_PRESOLVE_H
