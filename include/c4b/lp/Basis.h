//===--- Basis.h - Sparse LU basis factors for revised simplex --*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The factored representation of one simplex basis, the heart of the
/// revised method (Solver.cpp): instead of a pivoted tableau, the solver
/// keeps the constraint matrix `A` untouched and represents only
///
///     B = L * U            (sparse, Markowitz-ordered, exact Rational)
///
/// plus a product-form eta file (Eta.h) of the pivots applied since the
/// factorization was built.  Every simplex iteration then needs exactly
/// one BTRAN (pricing row `y^T = c_B^T B^-1`) and one FTRAN (entering
/// column `d = B^-1 a_q`) against these factors.
///
/// The factorization is a right-looking Gaussian elimination over the
/// basis columns.  Pivots are chosen by a Markowitz-style fill heuristic —
/// eliminate the sparsest active row, pivoting on its entry in the
/// sparsest active column — which keeps `L`/`U` close to the (near-
/// triangular) structure the analysis' bases actually have.  Over exact
/// rationals *any* nonzero pivot is numerically safe, so the heuristic
/// affects fill only, never correctness: FTRAN/BTRAN results are the exact
/// solutions of `Bx = v` / `B^T y = c` no matter which order was chosen.
///
/// Lifecycle: `factor()` builds fresh factors and clears the eta file;
/// `pushEta()` appends one pivot; `border()` extends a live factorization
/// by one appended constraint row without refactoring; `wantsRefactor()`
/// reports when the product-form updates (etas plus borders) have
/// outgrown their length or fill budget and the owner should call
/// `factor()` again.  Refactorization is a pure representation change —
/// the same exact linear maps before and after — so the policy thresholds
/// are free to change without perturbing any pivot trajectory.
///
/// The bordered update: appending row `r` whose basic column is a fresh
/// unit column (slack or artificial, diagonal `d`) turns the basis into
///
///     B' = [[B, 0], [r^T, d]]
///       = [[I, 0], [t^T, 1]] * [[F, 0], [0, d]] * [[E, 0], [0, 1]]
///
/// with `t = B^-T r` (one BTRAN against the live factors) and `B = F*E`
/// the factored part times the eta file.  The left factor is stored as a
/// border record; the middle extends the diagonal; the etas extend by
/// identity.  The identity composes inductively — later etas multiply on
/// the right, later borders wrap the outside — so FTRAN applies borders
/// newest-first before the LU solve and BTRAN applies them oldest-first
/// after it.  All exact, so solves through a bordered factorization and
/// through a fresh one are the same linear maps.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_LP_BASIS_H
#define C4B_LP_BASIS_H

#include "c4b/lp/Eta.h"
#include "c4b/support/Rational.h"

#include <utility>
#include <vector>

namespace c4b {

/// Sparse LU factors of one basis plus the eta file of subsequent pivots.
class BasisFactors {
public:
  /// A sparse column of `A`: (row, coefficient) pairs sorted by row.
  using SparseCol = std::vector<std::pair<int, Rational>>;

  /// Factors the basis `{Cols[Basis[0]], ..., Cols[Basis[m-1]]}` (column
  /// `k` of `B` is the `A`-column basic in position `k`) and clears the
  /// eta file.  The basis of a running simplex is always nonsingular;
  /// factoring a singular one is an invariant violation.
  void factor(const std::vector<SparseCol> &Cols, const std::vector<int> &Basis);

  /// X := B^-1 X.  In: dense by constraint row.  Out: dense by basis
  /// position (the tableau-row space the ratio test works in).
  void ftran(std::vector<Rational> &X) const;

  /// Y := B^-T Y.  In: dense by basis position (e.g. `c_B`).  Out: dense
  /// by constraint row, ready to dot against columns of `A`.
  void btran(std::vector<Rational> &Y) const;

  /// Records the pivot that replaced basis position `R` along the FTRAN'd
  /// entering column `D` (dense, size m, `D[R] != 0`).
  void pushEta(int R, const std::vector<Rational> &D);

  /// Extends the factorization by one appended constraint row whose basic
  /// column is a fresh unit column with diagonal `Diag`.  `RowPos` is the
  /// new row's coefficients on the currently basic columns, dense over
  /// basis positions (size = numRows() *before* the call); one BTRAN
  /// turns it into the border vector.  Grows numRows() by one.
  void border(std::vector<Rational> RowPos, Rational Diag);

  /// True when the product-form updates (etas plus borders) exceed their
  /// length or fill budget and the owner should refactor before the next
  /// solve grows any slower.
  bool wantsRefactor() const;

  /// Caps the eta-file length before `wantsRefactor()` trips (clamped to
  /// >= 1).  Tests force tiny limits to exercise mid-solve refactorization.
  void setEtaLimit(int Limit);
  int etaLimit() const { return EtaLimit; }

  int numEtas() const { return File.size(); }
  long etaNonzeros() const { return File.nonzeros(); }
  int numBorders() const { return static_cast<int>(Borders.size()); }
  long borderNonzeros() const { return BorderNnz; }
  /// Nonzeros of the current `L`+`U` factors (diagnostics / fill policy).
  long factorNonzeros() const { return LuNnz; }
  bool valid() const { return NumRows >= 0; }
  int numRows() const { return NumRows; }

private:
  /// One elimination step: row `PRow` was eliminated pivoting on basis
  /// position `PPos`; `Mults` are the (row, multiplier) pairs subtracted
  /// from the remaining rows, `URow` the surviving off-pivot entries
  /// (position, value) of the pivot row.
  struct Step {
    int PRow = -1;
    int PPos = -1;
    Rational Diag;
    std::vector<std::pair<int, Rational>> Mults;
    std::vector<std::pair<int, Rational>> URow;
  };

  /// One bordered row: `Row` is its (row == position) index, `T` the
  /// sparse border vector `t = B^-T r` over earlier rows, `Diag` the new
  /// basic column's diagonal.
  struct Border {
    int Row = -1;
    Rational Diag;
    std::vector<std::pair<int, Rational>> T;
  };

  int NumRows = -1;
  std::vector<Step> Steps;
  std::vector<Border> Borders;
  long LuNnz = 0;
  long BorderNnz = 0;
  EtaFile File;
  int EtaLimit = DefaultEtaLimit;

public:
  /// Default update budget (etas plus borders): long enough that short
  /// solves never refactor, short enough that the heavy corpus rows (t27
  /// pivots 171 times) exercise the refactorization path in every full
  /// run.  Benchmarked on the corpus: 64 refactors too eagerly, 512 lets
  /// update traversal dominate the solves; 128 beats both.
  static constexpr int DefaultEtaLimit = 128;
  /// Fill budget: refactor once the eta file stores more than this many
  /// times the nonzeros of the factors it wraps.
  static constexpr int FillFactor = 8;
};

} // namespace c4b

#endif // C4B_LP_BASIS_H
