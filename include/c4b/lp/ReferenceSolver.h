//===--- ReferenceSolver.h - Dense reference simplex ------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original dense two-phase tableau simplex, retained verbatim as a
/// differential-testing oracle for the sparse production core in
/// Solver.cpp.  Both implement the same pivot rules (Dantzig pricing with
/// Bland's anti-cycling fallback, identical tie-breaks), so on any input
/// they must agree on status, objective, and the extracted solution
/// vector bit-for-bit; the randomized tests in lp_differential_test.cpp
/// enforce exactly that.
///
/// This library is test-only: it is built as the separate `c4b_lp_ref`
/// target (gated by the C4B_LP_REFERENCE option, ON by default) and is
/// never linked into the production pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_LP_REFERENCESOLVER_H
#define C4B_LP_REFERENCESOLVER_H

#include "c4b/lp/Solver.h"

namespace c4b {
namespace lpref {

/// Minimizes `sum Objective` with the dense reference simplex.
LPResult denseMinimize(const LPProblem &P,
                       const std::vector<LinTerm> &Objective);

/// Maximizes `sum Objective`; the Objective field holds the maximum.
LPResult denseMaximize(const LPProblem &P,
                       const std::vector<LinTerm> &Objective);

/// Phase-1 feasibility only.
bool denseIsFeasible(const LPProblem &P);

} // namespace lpref
} // namespace c4b

#endif // C4B_LP_REFERENCESOLVER_H
