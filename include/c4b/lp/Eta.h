//===--- Eta.h - Product-form eta file for the revised simplex --*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The product-form-of-the-inverse eta file layered on top of the basis LU
/// factors (Basis.h).  A simplex pivot that brings column `a_q` into basis
/// position `r` turns the basis `B` into `B' = B * E` with
///
///     E = I + (d - e_r) e_r^T,      d = B^-1 a_q,
///
/// i.e. `E` is the identity with column `r` replaced by `d`.  `d` is the
/// FTRAN'd entering column the ratio test already computed, so recording a
/// pivot costs only the copy of `d`'s nonzeros — no factor is touched.
/// Solves then peel etas around the LU core:
///
///     FTRAN:  B'^-1 v = E_k^-1 ... E_1^-1 (LU)^-1 v   (etas in push order)
///     BTRAN:  B'^-T v = (LU)^-T E_1^-T ... E_k^-T v   (etas in reverse)
///
/// with the closed forms  E^-1 v: z_r = v_r / d_r, z_i = v_i - d_i z_r  and
/// E^-T y: y'_r = (y_r - sum_{i != r} d_i y_i) / d_r, y'_i = y_i.  All
/// arithmetic is exact `Rational`; an eta transform neither rounds nor
/// reorders anything, so solves through the file equal solves against a
/// fresh factorization bit for bit — which is why the refactorization
/// schedule can never change a pivot choice.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_LP_ETA_H
#define C4B_LP_ETA_H

#include "c4b/support/Rational.h"

#include <utility>
#include <vector>

namespace c4b {

/// One pivot's eta transform: basis position `R` was replaced along the
/// FTRAN'd entering column `d`, stored as the pivot element `DR = d[R]`
/// plus the off-pivot nonzeros `DOff`.
struct Eta {
  int R = -1;
  Rational DR;
  std::vector<std::pair<int, Rational>> DOff;

  std::size_t nonzeros() const { return DOff.size() + 1; }
};

/// The eta transforms accumulated since the last (re)factorization, in
/// pivot order, with the solve routines that apply them.
class EtaFile {
public:
  /// Records the pivot (position `R`, dense FTRAN'd column `D` of size m).
  /// `D[R]` must be nonzero.  Zero entries of `D` are dropped.
  void push(int R, const std::vector<Rational> &D);

  /// V := E_k^-1 ... E_1^-1 V (the FTRAN tail), in push order.
  void applyFtran(std::vector<Rational> &V) const;

  /// V := E_1^-T ... E_k^-T V (the BTRAN head), in reverse push order.
  void applyBtran(std::vector<Rational> &V) const;

  void clear() {
    Etas.clear();
    Nnz = 0;
  }
  int size() const { return static_cast<int>(Etas.size()); }
  bool empty() const { return Etas.empty(); }
  /// Total stored nonzeros across the file (the fill the refactorization
  /// policy bounds).
  long nonzeros() const { return Nnz; }

private:
  std::vector<Eta> Etas;
  long Nnz = 0;
};

} // namespace c4b

#endif // C4B_LP_ETA_H
