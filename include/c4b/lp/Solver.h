//===--- Solver.h - Exact-rational linear programming -----------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained linear-programming layer playing the role of the
/// off-the-shelf CLP solver used by the paper (Section 5): a dense
/// two-phase primal simplex over exact rationals with Bland's anti-cycling
/// rule.  Exactness matters here because an LP solution *is* the proof
/// certificate; there is no tolerance to hide behind.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_LP_SOLVER_H
#define C4B_LP_SOLVER_H

#include "c4b/support/Rational.h"

#include <string>
#include <vector>

namespace c4b {

/// Relation of a linear constraint.
enum class Rel { Le, Eq, Ge };

/// One `Coef * Var` summand of a linear constraint or objective.
struct LinTerm {
  int Var;
  Rational Coef;
};

/// A linear constraint `sum Terms  R  Rhs`.
struct LinConstraint {
  std::vector<LinTerm> Terms;
  Rel R = Rel::Le;
  Rational Rhs;
};

/// A linear program.  Variables are non-negative unless added with
/// addFreeVar (free variables are split internally by the solver).
class LPProblem {
public:
  /// Adds a variable constrained to be >= 0 and returns its id.
  int addVar(std::string Name = "");
  /// Adds an unrestricted-sign variable and returns its id.
  int addFreeVar(std::string Name = "");

  void addConstraint(std::vector<LinTerm> Terms, Rel R, Rational Rhs);

  int numVars() const { return static_cast<int>(Free.size()); }
  int numConstraints() const { return static_cast<int>(Rows.size()); }
  bool isFree(int Var) const { return Free[Var]; }
  const std::string &varName(int Var) const { return Names[Var]; }
  const std::vector<LinConstraint> &constraints() const { return Rows; }

private:
  std::vector<bool> Free;
  std::vector<std::string> Names;
  std::vector<LinConstraint> Rows;
};

/// Outcome of an LP solve.
enum class LPStatus { Optimal, Infeasible, Unbounded };

/// Result of minimizing an objective over an LPProblem.
struct LPResult {
  LPStatus Status = LPStatus::Infeasible;
  Rational Objective;
  /// One value per LPProblem variable (valid only when Optimal).
  std::vector<Rational> Values;

  bool isOptimal() const { return Status == LPStatus::Optimal; }
};

/// Dense exact two-phase primal simplex.
class SimplexSolver {
public:
  /// Minimizes `sum Objective` subject to the problem's constraints.
  LPResult minimize(const LPProblem &P, const std::vector<LinTerm> &Objective);

  /// Maximizes `sum Objective`; the returned Objective field is the
  /// maximum value (not its negation).
  LPResult maximize(const LPProblem &P, const std::vector<LinTerm> &Objective);

  /// Checks feasibility only (phase 1).
  bool isFeasible(const LPProblem &P);
};

} // namespace c4b

#endif // C4B_LP_SOLVER_H
