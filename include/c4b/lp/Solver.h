//===--- Solver.h - Exact-rational linear programming -----------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained linear-programming layer playing the role of the
/// off-the-shelf CLP solver used by the paper (Section 5): a two-phase
/// primal simplex over exact rationals with Dantzig pricing and Bland's
/// anti-cycling fallback.  Exactness matters here because an LP solution
/// *is* the proof certificate; there is no tolerance to hide behind.
///
/// The constraint rows the Figure-4 derivation emits are extremely sparse
/// (a handful of potential-annotation variables per row), so the core is a
/// *sparse* tableau: rows are sorted index/coefficient pairs, per-column
/// occurrence lists confine every pivot to the rows with a nonzero in the
/// entering column, and reduced costs are updated incrementally from the
/// pivot row's nonzeros alone.  `SimplexInstance` keeps the tableau and
/// basis alive across calls so a follow-up solve (a new objective, or a
/// constraint the current vertex already satisfies) restarts from the
/// current basis instead of re-running phase 1 — the warm start that makes
/// the paper's two-stage lexicographic optimization cheap.
///
/// Pivot rules and tie-breaks are shared bit-for-bit with the retained
/// dense oracle (ReferenceSolver.h); the differential tests enforce that
/// both produce identical statuses, objectives, and solution vectors.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_LP_SOLVER_H
#define C4B_LP_SOLVER_H

#include "c4b/support/Rational.h"

#include <string>
#include <utility>
#include <vector>

namespace c4b {

/// Relation of a linear constraint.
enum class Rel { Le, Eq, Ge };

/// One `Coef * Var` summand of a linear constraint or objective.
struct LinTerm {
  int Var;
  Rational Coef;
};

/// A linear constraint `sum Terms  R  Rhs`.
struct LinConstraint {
  std::vector<LinTerm> Terms;
  Rel R = Rel::Le;
  Rational Rhs;
};

/// A linear program.  Variables are non-negative unless added with
/// addFreeVar (free variables are split internally by the solver).
class LPProblem {
public:
  /// Adds a variable constrained to be >= 0 and returns its id.
  int addVar(std::string Name = "");
  /// Adds an unrestricted-sign variable and returns its id.
  int addFreeVar(std::string Name = "");

  void addConstraint(std::vector<LinTerm> Terms, Rel R, Rational Rhs);

  int numVars() const { return static_cast<int>(Free.size()); }
  int numConstraints() const { return static_cast<int>(Rows.size()); }
  bool isFree(int Var) const { return Free[static_cast<std::size_t>(Var)]; }
  const std::string &varName(int Var) const {
    return Names[static_cast<std::size_t>(Var)];
  }
  const std::vector<LinConstraint> &constraints() const { return Rows; }

private:
  std::vector<bool> Free;
  std::vector<std::string> Names;
  std::vector<LinConstraint> Rows;
};

/// Outcome of an LP solve.
enum class LPStatus { Optimal, Infeasible, Unbounded };

/// Result of minimizing an objective over an LPProblem.
struct LPResult {
  LPStatus Status = LPStatus::Infeasible;
  Rational Objective;
  /// One value per LPProblem variable (valid only when Optimal).
  std::vector<Rational> Values;
  /// Simplex pivots spent producing this result (all phases).
  long Pivots = 0;
  /// True when the solve restarted from a live basis instead of running
  /// phase 1 on a freshly built tableau.
  bool WarmStarted = false;

  bool isOptimal() const { return Status == LPStatus::Optimal; }
};

/// Running per-thread LP counters.  Always on (increments are plain
/// thread-local adds), so the batch analyzer and the benchmarks can
/// attribute pivots to pipeline stages without environment variables.
struct LPStats {
  long Solves = 0;      ///< minimize/feasibility solves completed
  long Pivots = 0;      ///< simplex pivots across all solves
  long WarmStarts = 0;  ///< solves that restarted from a live basis
};

/// The calling thread's running counters.  Stages snapshot-and-subtract to
/// attribute pivots; nothing ever resets them.
LPStats &lpThreadStats();

/// A live sparse simplex over one constraint system.  The tableau and the
/// current basis persist across calls:
///
///   * `ensureFeasible` runs phase 1 once; a following `minimize` reuses
///     the feasible basis and only pays phase 2.
///   * A second `minimize` with a different objective re-prices and
///     re-optimizes from the current optimal basis (no phase 1 at all).
///   * `addConstraint` splices a row into the live tableau.  When the
///     current vertex satisfies the new row the basis stays feasible and
///     the next solve is warm; otherwise one artificial variable is added
///     and the next solve re-runs a (short, warm) phase 1 from the
///     current basis.
///   * `addVar` appends a fresh non-negative variable (a zero column).
///
/// This is what makes the two-stage lexicographic objective cheap: stage 2
/// adds the pinning constraint — satisfied with equality by the stage-1
/// optimum — and re-optimizes warm.
class SimplexInstance {
public:
  explicit SimplexInstance(const LPProblem &P);

  /// Phase-1 feasibility; cached, so repeated calls are free.
  bool ensureFeasible();

  /// Minimizes `sum Objective` from the current basis (running phase 1
  /// first if no feasible basis is installed yet).
  LPResult minimize(const std::vector<LinTerm> &Objective);

  /// Adds `sum Terms R Rhs` to the live instance.  Variable ids are the
  /// LPProblem's (plus any ids returned by addVar).
  void addConstraint(const std::vector<LinTerm> &Terms, Rel R,
                     const Rational &Rhs);

  /// Adds a non-negative variable to the live instance and returns its id.
  int addVar();

  int numVars() const { return NumOrig; }
  long pivots() const { return PivotCount; }
  long warmStarts() const { return WarmStartCount; }
  int numRows() const { return static_cast<int>(Rows.size()); }
  int numCols() const { return NumCols; }
  /// Fraction of tableau entries currently nonzero (1.0 for an empty
  /// tableau, to keep the benchmark arithmetic simple).
  double density() const;

private:
  /// A tableau row: (column, coefficient) pairs sorted by column, zeros
  /// never stored.
  using SparseRow = std::vector<std::pair<int, Rational>>;

  int NumOrig = 0; ///< Original problem variables (grows with addVar).
  int NumCols = 0;
  std::vector<int> PosCol, NegCol;
  std::vector<SparseRow> Rows;
  std::vector<Rational> Rhss;
  std::vector<int> Basis;
  /// Per-column artificial flag: O(1) instead of scanning a list.
  std::vector<unsigned char> IsArt;
  std::vector<int> ArtificialCols;
  /// Column occurrence lists: ColRows[c] holds the rows that *may* have a
  /// nonzero in column c.  Entries go stale when a coefficient cancels;
  /// scans verify against the row and compact in place.
  std::vector<std::vector<int>> ColRows;
  /// Epoch marks for deduplicating occurrence-list scans.
  std::vector<int> RowMark;
  int MarkEpoch = 0;
  /// Scratch row for sparse axpy (buffers swap, so capacity is reused).
  SparseRow Scratch;

  bool Phase1Done = false;
  bool Feasible = true;
  bool HasBasis = false;
  bool ForbidArtificialEntry = false;
  bool Unbounded = false;
  long PivotCount = 0;
  long WarmStartCount = 0;

  const Rational *rowCoef(int Row, int Col) const;
  void appendRow(SparseRow Row, Rational Rhs, Rel R);
  void axpyRow(int Row, const Rational &F, const SparseRow &PivotRow);
  void pivot(int Row, int Col);
  Rational optimize(const std::vector<Rational> &Cost);
  std::vector<Rational> extract() const;
  SparseRow buildRow(const std::vector<LinTerm> &Terms) const;
};

/// One-shot facade over SimplexInstance, for callers that solve a problem
/// a single time (the logical-context queries build tiny LPs in droves).
class SimplexSolver {
public:
  /// Minimizes `sum Objective` subject to the problem's constraints.
  LPResult minimize(const LPProblem &P, const std::vector<LinTerm> &Objective);

  /// Maximizes `sum Objective`; the returned Objective field is the
  /// maximum value (not its negation).
  LPResult maximize(const LPProblem &P, const std::vector<LinTerm> &Objective);

  /// Checks feasibility only (phase 1).
  bool isFeasible(const LPProblem &P);
};

} // namespace c4b

#endif // C4B_LP_SOLVER_H
