//===--- Solver.h - Exact-rational linear programming -----------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained linear-programming layer playing the role of the
/// off-the-shelf CLP solver used by the paper (Section 5): a two-phase
/// primal simplex over exact rationals with Dantzig pricing and Bland's
/// anti-cycling fallback.  Exactness matters here because an LP solution
/// *is* the proof certificate; there is no tolerance to hide behind.
///
/// The core is the *revised* simplex method: the constraint matrix is
/// stored once, immutable, and only the basis is represented — as a
/// sparse LU factorization (Basis.h) topped by a product-form eta file
/// (Eta.h).  Reduced costs are initialized by one BTRAN pricing pass
/// (`y^T = c_B^T B^-1`, then `c_j - y . a_j` against the original
/// columns) and maintained incrementally: each pivot recovers its tableau
/// row with one sparse BTRAN of a unit vector and folds it into the
/// reduced-cost vector, exactly as the dense tableau does.  The ratio
/// test runs on one FTRAN (`d = B^-1 a_q`); a pivot appends one eta
/// instead of rewriting a tableau, and the factorization is rebuilt only
/// when the eta file outgrows its length or fill budget.  `SimplexInstance` keeps the basis
/// alive across calls so a follow-up solve (a new objective, or a
/// constraint the current vertex already satisfies) restarts from the
/// current basis instead of re-running phase 1 — the warm start that makes
/// the paper's two-stage lexicographic optimization cheap.
///
/// Pivot rules and tie-breaks are shared bit-for-bit with the retained
/// dense tableau oracle (ReferenceSolver.h): every priced or ratio-tested
/// quantity is computed exactly, so Dantzig/Bland elections and leaving-
/// row tie-breaks see identical rationals in both implementations, and the
/// differential tests enforce identical statuses, objectives, solution
/// vectors, and pivot counts.  Refactorization timing provably cannot
/// perturb this: solves through fresh factors and through the eta file are
/// the same exact linear maps.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_LP_SOLVER_H
#define C4B_LP_SOLVER_H

#include "c4b/lp/Basis.h"
#include "c4b/support/Rational.h"

#include <string>
#include <utility>
#include <vector>

namespace c4b {

/// Relation of a linear constraint.
enum class Rel { Le, Eq, Ge };

/// One `Coef * Var` summand of a linear constraint or objective.
struct LinTerm {
  int Var;
  Rational Coef;
};

/// A linear constraint `sum Terms  R  Rhs`.
struct LinConstraint {
  std::vector<LinTerm> Terms;
  Rel R = Rel::Le;
  Rational Rhs;
};

/// A linear program.  Variables are non-negative unless added with
/// addFreeVar (free variables are split internally by the solver).
class LPProblem {
public:
  /// Adds a variable constrained to be >= 0 and returns its id.
  int addVar(std::string Name = "");
  /// Adds an unrestricted-sign variable and returns its id.
  int addFreeVar(std::string Name = "");

  void addConstraint(std::vector<LinTerm> Terms, Rel R, Rational Rhs);

  int numVars() const { return static_cast<int>(Free.size()); }
  int numConstraints() const { return static_cast<int>(Rows.size()); }
  bool isFree(int Var) const { return Free[static_cast<std::size_t>(Var)]; }
  const std::string &varName(int Var) const {
    return Names[static_cast<std::size_t>(Var)];
  }
  const std::vector<LinConstraint> &constraints() const { return Rows; }

private:
  std::vector<bool> Free;
  std::vector<std::string> Names;
  std::vector<LinConstraint> Rows;
};

/// Outcome of an LP solve.
enum class LPStatus { Optimal, Infeasible, Unbounded };

/// Result of minimizing an objective over an LPProblem.
struct LPResult {
  LPStatus Status = LPStatus::Infeasible;
  Rational Objective;
  /// One value per LPProblem variable (valid only when Optimal).
  std::vector<Rational> Values;
  /// Simplex pivots spent producing this result (all phases).
  long Pivots = 0;
  /// True when the solve restarted from a live basis instead of running
  /// phase 1 on a freshly built tableau.
  bool WarmStarted = false;

  bool isOptimal() const { return Status == LPStatus::Optimal; }
};

/// Running per-thread LP counters.  Always on (increments are plain
/// thread-local adds), so the batch analyzer and the benchmarks can
/// attribute pivots to pipeline stages without environment variables.
struct LPStats {
  long Solves = 0;      ///< minimize/feasibility solves completed
  long Pivots = 0;      ///< simplex pivots across all solves
  long WarmStarts = 0;  ///< solves that restarted from a live basis
  long Refactors = 0;   ///< basis refactorizations beyond each first build
};

/// The calling thread's running counters.  Stages snapshot-and-subtract to
/// attribute pivots; nothing ever resets them.
LPStats &lpThreadStats();

/// A live revised simplex over one constraint system.  The column store,
/// basis, and basis factors persist across calls:
///
///   * `ensureFeasible` runs phase 1 once; a following `minimize` reuses
///     the feasible basis and only pays phase 2.
///   * A second `minimize` with a different objective re-prices and
///     re-optimizes from the current optimal basis (no phase 1 at all).
///   * `addConstraint` appends a row to the immutable column store and
///     borders the basis with the new row's slack or artificial; the
///     factorization is marked stale and lazily rebuilt on the next
///     solve.  When the current vertex satisfies the new row the basis
///     stays feasible and the next solve is warm; otherwise one
///     artificial variable is added and the next solve re-runs a (short,
///     warm) phase 1 from the current basis.
///   * `addVar` appends a fresh non-negative variable (a zero column).
///
/// This is what makes the two-stage lexicographic objective cheap: stage 2
/// adds the pinning constraint — satisfied with equality by the stage-1
/// optimum — and re-optimizes warm.
class SimplexInstance {
public:
  explicit SimplexInstance(const LPProblem &P);

  /// Phase-1 feasibility; cached, so repeated calls are free.
  bool ensureFeasible();

  /// Minimizes `sum Objective` from the current basis (running phase 1
  /// first if no feasible basis is installed yet).
  LPResult minimize(const std::vector<LinTerm> &Objective);

  /// Adds `sum Terms R Rhs` to the live instance.  Variable ids are the
  /// LPProblem's (plus any ids returned by addVar).
  void addConstraint(const std::vector<LinTerm> &Terms, Rel R,
                     const Rational &Rhs);

  /// Adds a non-negative variable to the live instance and returns its id.
  int addVar();

  int numVars() const { return NumOrig; }
  long pivots() const { return PivotCount; }
  long warmStarts() const { return WarmStartCount; }
  int numRows() const { return NumRows; }
  int numCols() const { return NumCols; }
  /// Fraction of constraint-matrix entries nonzero (1.0 for an empty
  /// system, to keep the benchmark arithmetic simple).  The matrix is
  /// immutable under the revised method, so unlike the old tableau
  /// density this does not drift as pivots fill rows in.
  double density() const;

  /// Caps the eta-file length before the basis is refactored (clamped to
  /// >= 1).  A policy knob only: refactorization timing never changes any
  /// pivot, so tests force tiny limits to exercise refactor boundaries.
  void setEtaLimit(int Limit) { Factors.setEtaLimit(Limit); }
  int etaLimit() const { return Factors.etaLimit(); }
  /// Basis refactorizations performed beyond the first build of each
  /// factorization lifetime (eta-budget trips plus staleness rebuilds
  /// after addConstraint).
  long refactors() const { return RefactorCount; }
  /// Peak eta-file length ever reached (bounded by the eta limit).
  int maxEtaLen() const { return MaxEtaLenEver; }

private:
  /// A sparse column of the constraint matrix: (row, coefficient) pairs
  /// sorted by row, zeros never stored.  Immutable once installed —
  /// pivots touch only the basis factors.
  using SparseCol = std::vector<std::pair<int, Rational>>;
  /// A sparse row under construction: (column, coefficient) pairs sorted
  /// by column.
  using SparseRow = std::vector<std::pair<int, Rational>>;

  int NumOrig = 0; ///< Original problem variables (grows with addVar).
  int NumCols = 0;
  int NumRows = 0;
  std::vector<int> PosCol, NegCol;
  /// The constraint matrix, column-wise.
  std::vector<SparseCol> Cols;
  /// The same matrix row-wise (sorted by column), for the sparse
  /// pivot-row scatter that updates reduced costs.  Also immutable.
  std::vector<SparseRow> RowsA;
  /// Original (sign-normalized) right-hand sides, by row.
  std::vector<Rational> Rhs0;
  /// Current basic values, by basis position (position == row).
  std::vector<Rational> XB;
  std::vector<int> Basis;      ///< Basic column per position.
  std::vector<int> BasisPosOf; ///< Column -> basis position, or -1.
  /// Per-column artificial flag: O(1) instead of scanning a list.
  std::vector<unsigned char> IsArt;
  std::vector<int> ArtificialCols;
  /// LU factors of the current basis plus the eta file of pivots since.
  BasisFactors Factors;
  /// True when the factors do not describe the current basis (initially,
  /// and after addConstraint borders the basis); the next solve rebuilds.
  bool FactorStale = true;

  bool Phase1Done = false;
  bool Feasible = true;
  bool HasBasis = false;
  bool ForbidArtificialEntry = false;
  bool Unbounded = false;
  long PivotCount = 0;
  long WarmStartCount = 0;
  long LuBuilds = 0;
  long RefactorCount = 0;
  int MaxEtaLenEver = 0;

  /// Scratch for the reduced-cost update scatter (sized to NumCols on
  /// demand; values are always restored to zero after use).
  std::vector<Rational> AlphaScratch;
  std::vector<int> TouchedCols;
  std::vector<unsigned char> TouchedMark;

  void appendRow(SparseRow Row, Rational Rhs, Rel R);
  void factorNow();
  void refreshFactors();
  /// Installs the pivot (leaving position, entering column) given the
  /// FTRAN'd entering column D and the ratio-test step Theta.
  void applyPivot(int Leave, int Enter, const std::vector<Rational> &D,
                  const Rational &Theta);
  /// CBar -= F * (row Leave of the post-pivot tableau), computed as one
  /// sparse BTRAN of a unit vector plus a row-wise scatter against the
  /// immutable matrix.
  void updateReducedCosts(std::vector<Rational> &CBar, const Rational &F,
                          int Leave);
  Rational optimize(const std::vector<Rational> &Cost);
  Rational objectiveValue(const std::vector<Rational> &Cost) const;
  std::vector<Rational> extract() const;
  SparseRow buildRow(const std::vector<LinTerm> &Terms) const;
};

/// One-shot facade over SimplexInstance, for callers that solve a problem
/// a single time (the logical-context queries build tiny LPs in droves).
class SimplexSolver {
public:
  /// Minimizes `sum Objective` subject to the problem's constraints.
  LPResult minimize(const LPProblem &P, const std::vector<LinTerm> &Objective);

  /// Maximizes `sum Objective`; the returned Objective field is the
  /// maximum value (not its negation).
  LPResult maximize(const LPProblem &P, const std::vector<LinTerm> &Objective);

  /// Checks feasibility only (phase 1).
  bool isFeasible(const LPProblem &P);
};

} // namespace c4b

#endif // C4B_LP_SOLVER_H
