//===--- Error.h - Structured analysis-failure taxonomy ---------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The failure taxonomy of the resource-governance layer.  Every way an
/// analysis job can end other than "bound found" or the classic
/// "no linear bound" has a kind here, so batch reports, the CLI exit code,
/// and the degradation policy can react to *why* a job failed instead of
/// pattern-matching error strings.
///
/// `AbortError` is the one exception type the library throws: budget
/// checkpoints and checked invariants raise it, and every pipeline stage
/// boundary (and the batch analyzer's per-job containment) catches it and
/// converts it into a typed artifact error.  User-facing entry points
/// never leak it.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SUPPORT_ERROR_H
#define C4B_SUPPORT_ERROR_H

#include <exception>
#include <string>

namespace c4b {

/// Why an analysis failed (or degraded).  `None` means "not failed" or the
/// legacy untyped failure ("no linear bound derivable").
enum class AnalysisErrorKind {
  None = 0,
  ParseError,          ///< Source did not parse (incl. nesting-depth limit).
  MalformedIR,         ///< Lowering failed or the IR verifier rejected it.
  LpBudgetExceeded,    ///< Pivot or constraint-count budget exhausted.
  DeadlineExceeded,    ///< Wall-clock deadline passed at a checkpoint.
  CoefficientOverflow, ///< A BigInt coefficient outgrew the digit budget.
  InternalInvariant,   ///< A checked internal invariant failed.
  NoLinearBound,       ///< The analysis completed but no linear bound
                       ///< exists (derivation failed structurally or the
                       ///< constraint system is infeasible).
  Interrupted,         ///< The job was cancelled cooperatively (SIGINT/
                       ///< SIGTERM, service drain) at a budget checkpoint.
};

/// Stable short name, e.g. "LpBudgetExceeded".
const char *errorKindName(AnalysisErrorKind K);

/// Process exit code the CLI maps each kind to.  Distinct and nonzero per
/// kind; `None` maps to the legacy generic failure code 1.
int exitCodeFor(AnalysisErrorKind K);

/// One typed failure: the kind plus a human-readable message.
struct AnalysisError {
  AnalysisErrorKind Kind = AnalysisErrorKind::None;
  std::string Message;

  bool isError() const { return Kind != AnalysisErrorKind::None; }
  /// Renders `KindName: message`.
  std::string toString() const;
};

/// The internal abort signal: thrown by budget checkpoints, fault
/// injection, and checked invariants; caught at stage boundaries.
class AbortError : public std::exception {
public:
  explicit AbortError(AnalysisError E)
      : Err(std::move(E)), What(Err.toString()) {}
  AbortError(AnalysisErrorKind K, std::string Message)
      : AbortError(AnalysisError{K, std::move(Message)}) {}

  const AnalysisError &error() const { return Err; }
  const char *what() const noexcept override { return What.c_str(); }

private:
  AnalysisError Err;
  std::string What;
};

/// Raises an InternalInvariant AbortError.  Used by C4B_CHECK_INVARIANT so
/// invariant violations are contained failures in every build type instead
/// of asserts that release builds compile out.
[[noreturn]] void reportInternalInvariant(const char *Cond, const char *File,
                                          int Line);

/// A checked invariant: active in release and debug builds alike.  On
/// violation it throws AbortError(InternalInvariant) so the batch analyzer
/// and the CLI report a typed failure instead of crashing (debug) or
/// silently proceeding on corrupt state (release).
#define C4B_CHECK_INVARIANT(Cond)                                              \
  do {                                                                         \
    if (!(Cond))                                                               \
      ::c4b::reportInternalInvariant(#Cond, __FILE__, __LINE__);               \
  } while (false)

} // namespace c4b

#endif // C4B_SUPPORT_ERROR_H
