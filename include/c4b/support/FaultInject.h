//===--- FaultInject.h - Deterministic fault injection ----------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection hook for exercising every containment
/// path of the resource-governance layer without contriving pathological
/// programs.  A test arms a one-shot plan — "at the Nth hit of this site,
/// raise this error kind" — and the matching checkpoint throws AbortError
/// exactly there.  The plan is thread-local (arm and run the job on the
/// same thread) and auto-disarms after firing, so a single-retry policy
/// sees the transient failure pattern it exists for.
///
/// The hooks are compiled in unconditionally: when disarmed they cost one
/// thread-local boolean read, and keeping them in the production build
/// means the tests exercise exactly the shipped code paths.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SUPPORT_FAULTINJECT_H
#define C4B_SUPPORT_FAULTINJECT_H

#include "c4b/support/Error.h"

#include <atomic>

namespace c4b {
namespace faultinject {

/// Instrumented program points.  Each maps to one governed loop or stage
/// boundary; together they can force every AnalysisErrorKind.
enum class Site {
  Parse,        ///< parseModule entry.
  Verify,       ///< check stage entry (IR verifier / lints).
  Constraint,   ///< one materialized constraint (recording sink).
  FixpointPass, ///< one dataflow fixpoint pass.
  Pivot,        ///< one simplex pivot.
  BigIntAlloc,  ///< one BigInt magnitude allocation (multiplication).
  CacheLoad,    ///< one on-disk analysis-cache entry load.
  CostSlice,    ///< cost-relevance slice construction (over-slice tamper).
  // Service-side sites (the c4bd daemon).  These run on the daemon's
  // acceptor and worker threads, so the chaos soak arms them through the
  // process-wide plan (armGlobal) instead of the thread-local one.
  Accept,       ///< one accepted connection (acceptor thread).
  RequestRead,  ///< one request-frame read (worker thread).
  Dispatch,     ///< one request dispatch, before the analysis runs.
  CacheFlush,   ///< one durable cache/summary flush (fsync + rename).
};

/// Stable short name of a site ("accept", "pivot", ...); the service
/// protocol and the chaos soak script select sites by it.
const char *siteName(Site S);
/// Inverse of siteName; false when \p Name matches no site.
bool siteByName(const char *Name, Site &Out);

/// Arms a one-shot fault: the \p TriggerAt-th hit (1-based) of \p S on
/// this thread throws AbortError(\p Kind).  Re-arming replaces the plan.
void arm(Site S, long TriggerAt, AnalysisErrorKind Kind);

/// Cancels any armed plan on this thread and resets its hit counter.
void disarm();

/// True while a plan is armed on this thread (it auto-disarms on firing).
bool armed();

/// Process-wide variant of arm(): the \p TriggerAt-th hit of \p S on *any*
/// thread throws.  This is how the chaos soak reaches the daemon's
/// acceptor/worker threads, which it cannot arm thread-locally.  One plan
/// at a time; re-arming replaces it, and it auto-disarms on firing.
void armGlobal(Site S, long TriggerAt, AnalysisErrorKind Kind);

/// Cancels the process-wide plan.
void disarmGlobal();

namespace detail {
extern thread_local bool Armed;
extern std::atomic<bool> GlobalArmed;
void hitSlow(Site S);
} // namespace detail

/// Checkpoint call, placed next to the budget checkpoints.  No-op unless
/// a plan is armed on this thread or process-wide.
inline void hit(Site S) {
  if (detail::Armed || detail::GlobalArmed.load(std::memory_order_relaxed))
    detail::hitSlow(S);
}

} // namespace faultinject
} // namespace c4b

#endif // C4B_SUPPORT_FAULTINJECT_H
