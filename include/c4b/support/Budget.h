//===--- Budget.h - Cooperative resource budgets ---------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation and resource budgets for one analysis job.
/// The exact-rational simplex and the amortized derivation can blow up on
/// adversarial inputs; a `Budget` bounds them with four limits:
///
///   * a wall-clock deadline (seconds from token creation),
///   * an LP pivot limit (total simplex pivots across all solves of the
///     job, including logical-context entailment checks),
///   * a constraint-count limit on the materialized derivation walk, and
///   * an approximate decimal-digit cap on BigInt coefficients.
///
/// Enforcement is cooperative: hot loops call the checkpoint functions
/// below, which throw `AbortError` with the matching `AnalysisErrorKind`
/// when a limit trips.  Stage boundaries catch the abort and surface a
/// typed failure.  The token is installed per thread (`BudgetScope`), so
/// concurrent batch jobs each govern themselves independently.
///
/// Determinism: the pivot and constraint counters are exact, so the same
/// program under the same pivot/constraint budget fails at the identical
/// point in serial and parallel runs.  Wall-clock deadlines are inherently
/// timing-dependent and make no such promise.
///
/// Fail-safety: with no budget installed every checkpoint is a no-op
/// (one thread-local read), so unbudgeted results are bit-identical to a
/// build without this layer.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SUPPORT_BUDGET_H
#define C4B_SUPPORT_BUDGET_H

#include "c4b/support/Error.h"

#include <chrono>
#include <cstddef>
#include <optional>

namespace c4b {

/// Declarative limits; a value <= 0 means "unlimited".  Carried inside
/// `AnalysisOptions` so every entry point (serial, batch, CLI) can pin a
/// budget without new plumbing; never serialized into certificates (a
/// budget changes when a derivation is *abandoned*, never its content).
struct BudgetLimits {
  /// Wall-clock deadline in seconds, measured from Budget creation (job
  /// start at the entry points).
  double DeadlineSeconds = 0;
  /// Total simplex pivots across every LP solve of the job.
  long MaxPivots = 0;
  /// Materialized constraints emitted by the derivation walk.
  long MaxConstraints = 0;
  /// Approximate decimal digits per BigInt coefficient (granularity is one
  /// 32-bit limb, ~9.6 digits).
  int MaxCoefficientDigits = 0;

  bool enabled() const {
    return DeadlineSeconds > 0 || MaxPivots > 0 || MaxConstraints > 0 ||
           MaxCoefficientDigits > 0;
  }
};

/// The runtime token: limits plus the counters enforcing them.  One Budget
/// governs one job on one thread; it is not thread-safe by design (each
/// batch worker installs its own).
class Budget {
public:
  explicit Budget(const BudgetLimits &L)
      : Limits(L), Start(std::chrono::steady_clock::now()) {}

  const BudgetLimits &limits() const { return Limits; }
  long pivots() const { return Pivots; }
  long constraints() const { return Constraints; }

  /// Seconds elapsed since the token was created.
  double elapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
        .count();
  }

  /// Throws AbortError(DeadlineExceeded) when past the deadline.
  void checkDeadline();

  /// Counts one simplex pivot; throws AbortError(LpBudgetExceeded) past
  /// the pivot limit, and polls the deadline every 64 pivots.
  void countPivot();

  /// Counts one emitted constraint; throws AbortError(LpBudgetExceeded)
  /// past the constraint limit, and polls the deadline every 256
  /// constraints.
  void countConstraint();

  /// Checks a BigInt magnitude of \p Limbs 32-bit limbs against the digit
  /// cap; throws AbortError(CoefficientOverflow) when over.
  void checkCoefficient(std::size_t Limbs);

  /// The budget governing the current thread, or null.
  static Budget *current();

private:
  friend class BudgetScope;

  BudgetLimits Limits;
  std::chrono::steady_clock::time_point Start;
  long Pivots = 0;
  long Constraints = 0;
};

/// RAII installer: makes \p B the current thread's budget for the scope's
/// lifetime, restoring the previous one (scopes nest) on exit.
class BudgetScope {
public:
  explicit BudgetScope(Budget &B);
  /// Convenience: creates an owned Budget from \p L and installs it (the
  /// deadline clock starts here).
  explicit BudgetScope(const BudgetLimits &L);
  ~BudgetScope();

  BudgetScope(const BudgetScope &) = delete;
  BudgetScope &operator=(const BudgetScope &) = delete;

private:
  std::optional<Budget> Owned;
  Budget *Prev;
};

/// RAII suspension: clears the current thread's budget for the scope's
/// lifetime.  The degradation policy uses this so the ranking-function
/// fallback of an already-exhausted job is not instantly killed by the
/// same blown budget.
class BudgetSuspend {
public:
  BudgetSuspend();
  ~BudgetSuspend();

  BudgetSuspend(const BudgetSuspend &) = delete;
  BudgetSuspend &operator=(const BudgetSuspend &) = delete;

private:
  Budget *Prev;
};

//===----------------------------------------------------------------------===//
// Checkpoints
//===----------------------------------------------------------------------===//
//
// Free functions the governed loops call.  Each first consults the fault
// injector (FaultInject.h), then the installed budget, and is a no-op when
// neither is active.  Implementations live in Budget.cpp so the hot
// callers only pay a function call plus two thread-local reads.

//===----------------------------------------------------------------------===//
// Cooperative global cancellation
//===----------------------------------------------------------------------===//
//
// A process-wide "stop now" flag polled by the same checkpoints that
// enforce budgets: when set, the next checkpoint on any thread throws
// AbortError(Interrupted), which the stage boundaries convert into a
// typed failure exactly like a budget kill.  requestCancellation is one
// relaxed atomic store, so a SIGINT/SIGTERM handler may call it directly
// (async-signal-safe); the CLI and the c4bd drain path do.

/// Requests cooperative cancellation of every governed loop in the
/// process.  Async-signal-safe.
void requestCancellation();
/// Clears the flag (start of a fresh run; tests).
void clearCancellation();
/// True while cancellation is requested.
bool cancellationRequested();

/// Simplex pivot loop (Solver.cpp).
void budgetOnPivot();
/// Constraint materialization (the pipeline's recording sink).
void budgetOnConstraint();
/// One dataflow fixpoint pass over a loop body (Dataflow.h engines).
void budgetOnFixpointPass();
/// BigInt magnitude growth; \p Limbs is the result size in 32-bit limbs.
void budgetOnCoefficient(std::size_t Limbs);
/// Pipeline stage entry (parse / check / generate / solve): polls the
/// deadline so tiny deadlines trip promptly even on tiny programs.
void budgetOnStage();

} // namespace c4b

#endif // C4B_SUPPORT_BUDGET_H
