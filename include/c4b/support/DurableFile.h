//===--- DurableFile.h - fsync'd temp+rename file writes --------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One durable-write primitive shared by every disk-backed store (the
/// tier-3 analysis cache, the summary store).  The write discipline is:
///
///   1. write the whole record to a same-directory temp file,
///   2. fsync the temp file (the bytes are on the platter, not just in
///      the page cache),
///   3. rename it over the final name (atomic on POSIX: readers see the
///      old entry or the whole new one, never a prefix),
///   4. fsync the directory (the rename itself survives a power cut).
///
/// Any failure — including the injected Site::CacheFlush fault — is
/// contained to a `false` return with the temp file removed: the caller's
/// in-memory store stands, the disk just missed this record.  Durability
/// failures never become analysis failures.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SUPPORT_DURABLEFILE_H
#define C4B_SUPPORT_DURABLEFILE_H

#include <string>

namespace c4b {

/// Durably writes \p Contents to \p Path via \p Tmp (a caller-chosen
/// unique name in the same directory).  Returns true when the record is
/// fully durable; false on any failure (temp removed best-effort).
/// Never throws: the Site::CacheFlush fault and every I/O error are
/// absorbed into the false return.
bool writeFileDurable(const std::string &Path, const std::string &Tmp,
                      const std::string &Contents);

} // namespace c4b

#endif // C4B_SUPPORT_DURABLEFILE_H
