//===--- WorkSteal.h - Work-stealing parallel-for ---------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing scheduler for the pipeline's fan-out points (the
/// batch analyzer's job loop, the scheduled analysis' SCC waves).  Work
/// items vary in cost by orders of magnitude across the corpus — one
/// function's constraint system can dwarf the rest of its wave — so both
/// static striping and a shared atomic cursor leave cores idle: striping
/// strands whole blocks behind one heavy item, and a single cursor makes
/// every claim a contention point.  Here each worker owns a deque seeded
/// with a contiguous block of indices; it pops locally until empty, then
/// steals half of a victim's remaining work, so imbalance migrates to
/// idle cores in O(log) steals instead of serializing on a hot counter.
///
/// The scheduler moves indices only.  What each index means — and that
/// concurrent bodies share no mutable state — is the caller's contract,
/// exactly as it was for the cursor loops this replaces; results land in
/// pre-sized slots, so scheduling order never changes any output.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SUPPORT_WORKSTEAL_H
#define C4B_SUPPORT_WORKSTEAL_H

#include <cstddef>
#include <functional>

namespace c4b {

/// Work-stealing execution of `Body(0) ... Body(N-1)` across a fixed-size
/// pool (the calling thread participates as worker 0).
class WorkStealingPool {
public:
  /// Runs \p Body over every index in `[0, N)` on
  /// `effectiveThreads(Threads)` workers, clamped further to one worker
  /// per item.  Blocks until every body has returned.  Bodies must not
  /// throw — the pipeline's fan-out points convert failures to typed
  /// per-item results before reaching the scheduler.
  static void parallelFor(int Threads, std::size_t N,
                          const std::function<void(std::size_t)> &Body);

  /// The worker count actually used for a request: \p Requested clamped
  /// to the hardware concurrency (<= 0 selects it outright; a probe
  /// reporting 0 cores counts as 1).  Oversubscribing rational-arithmetic
  /// workers only adds context-switch overhead, so the pool never runs
  /// more threads than cores — honest `threads_effective` reporting in
  /// the benchmarks comes from this same function.
  static int effectiveThreads(int Requested);
};

} // namespace c4b

#endif // C4B_SUPPORT_WORKSTEAL_H
