//===--- Hash.h - Stable content hashing ------------------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable (cross-platform, cross-run) content hashing shared by the
/// content-addressed layers: the tier-3 analysis cache keys modules, the
/// summary store keys call-graph SCCs, and certificates reference consumed
/// summary keys.  All of them depend on the same bytes hashing to the same
/// value on every machine, so this is FNV-1a over explicit byte strings —
/// never std::hash, whose value is implementation-defined.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SUPPORT_HASH_H
#define C4B_SUPPORT_HASH_H

#include <cstdint>
#include <string>
#include <string_view>

namespace c4b {

/// FNV-1a over \p S, continuing from \p Seed.  Stable across platforms
/// and runs (the on-disk cache and summary stores depend on that).
std::uint64_t stableHash64(std::string_view S,
                           std::uint64_t Seed = 1469598103934665603ull);

/// Folds \p S into \p H length-separated, so ("ab","c") and ("a","bc")
/// hash differently.
std::uint64_t foldString(std::uint64_t H, std::string_view S);

/// Renders a hash as 16 lowercase hex digits (entry filenames, key lines
/// inside serialized records).
std::string hex16(std::uint64_t V);

/// Fingerprint of this build of the library.  Folded into on-disk record
/// headers so entries written by a different build parse as clean stale
/// misses instead of being field-misread under a changed layout.
std::uint64_t buildFingerprint();

} // namespace c4b

#endif // C4B_SUPPORT_HASH_H
