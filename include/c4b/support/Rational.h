//===--- Rational.h - Exact rational numbers --------------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals.  Quantitative annotations, resource metrics, LP
/// tableaus, and certificates all use this type, so every derived bound is
/// an exact number such as 2/3 rather than 0.66666.
///
/// Values are kept in a 64-bit numerator/denominator fast path (with
/// 128-bit intermediates) and silently promote to arbitrary precision when
/// a reduced result no longer fits; the simplex pivots millions of these,
/// so the fast path is what makes the exact solver practical.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SUPPORT_RATIONAL_H
#define C4B_SUPPORT_RATIONAL_H

#include "c4b/support/BigInt.h"

#include <cassert>
#include <memory>
#include <string>

namespace c4b {

/// An exact rational number kept in lowest terms with a positive
/// denominator.
class Rational {
public:
  Rational() = default;
  Rational(std::int64_t V) : SN(V) {}
  explicit Rational(const BigInt &N);
  Rational(const BigInt &N, const BigInt &D);
  Rational(std::int64_t N, std::int64_t D);

  /// Parses "a", "-a", "a/b", or simple decimals like "1.25".
  static Rational fromString(const std::string &S);

  BigInt numerator() const;
  BigInt denominator() const;

  bool isZero() const { return Big ? false : SN == 0; }
  bool isInteger() const;
  int sign() const;

  Rational operator-() const;
  Rational operator+(const Rational &B) const;
  Rational operator-(const Rational &B) const;
  Rational operator*(const Rational &B) const;
  Rational operator/(const Rational &B) const;

  // Genuinely in-place: the innermost loop of every simplex pivot runs
  // through these, so the fast path must not build a temporary Rational,
  // and the promoted path re-uses this value's BigRep allocation when it
  // is the sole owner instead of churning shared_ptr control blocks.
  Rational &operator+=(const Rational &B);
  Rational &operator-=(const Rational &B);
  Rational &operator*=(const Rational &B);
  Rational &operator/=(const Rational &B);

  bool operator==(const Rational &B) const { return compare(B) == 0; }
  bool operator!=(const Rational &B) const { return compare(B) != 0; }
  bool operator<(const Rational &B) const { return compare(B) < 0; }
  bool operator<=(const Rational &B) const { return compare(B) <= 0; }
  bool operator>(const Rational &B) const { return compare(B) > 0; }
  bool operator>=(const Rational &B) const { return compare(B) >= 0; }

  int compare(const Rational &B) const;

  /// Renders "a" or "a/b".
  std::string toString() const;

  /// Approximate value for reporting and plots only.
  double toDouble() const;

private:
  struct BigRep {
    BigInt Num, Den; // Reduced; Den positive; does not fit the fast path.
  };

  // Fast path (active when Big is null): SN/SD reduced, SD > 0.
  std::int64_t SN = 0;
  std::int64_t SD = 1;
  // Shared immutable big representation (copies are cheap).
  std::shared_ptr<const BigRep> Big;

  static Rational fromI128(__int128 N, __int128 D);
  static Rational fromBig(BigInt N, BigInt D);
  /// In-place assignment of the (unreduced) quotient N/D; reuses the
  /// current BigRep allocation when uniquely owned.
  Rational &assignI128(__int128 N, __int128 D);
  Rational &assignBig(BigInt N, BigInt D);
  BigInt bigNum() const;
  BigInt bigDen() const;
};

} // namespace c4b

#endif // C4B_SUPPORT_RATIONAL_H
