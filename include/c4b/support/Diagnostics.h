//===--- Diagnostics.h - Source locations and error reporting ---*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source locations and a diagnostic sink shared by the lexer,
/// parser, lowering, and analysis layers.  The library never throws; fatal
/// front-end problems are accumulated here and surfaced through return
/// values, matching the LLVM no-exceptions idiom.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SUPPORT_DIAGNOSTICS_H
#define C4B_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace c4b {

/// A 1-based line/column position in a source buffer.
struct SourceLoc {
  int Line = 0;
  int Col = 0;

  bool isValid() const { return Line > 0; }
  std::string toString() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported problem.  `toString` renders
/// `line:col: severity: message` with the location omitted when invalid.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  std::string toString() const;
};

/// Collects diagnostics produced while processing one input.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, const std::string &Msg) {
    Diags.push_back({DiagKind::Error, Loc, Msg});
  }
  void warning(SourceLoc Loc, const std::string &Msg) {
    Diags.push_back({DiagKind::Warning, Loc, Msg});
  }
  void note(SourceLoc Loc, const std::string &Msg) {
    Diags.push_back({DiagKind::Note, Loc, Msg});
  }

  bool hasErrors() const { return count(DiagKind::Error) > 0; }

  int errorCount() const { return count(DiagKind::Error); }
  int warningCount() const { return count(DiagKind::Warning); }
  int noteCount() const { return count(DiagKind::Note); }

  /// Moves every diagnostic of \p Other into this engine (stage
  /// accumulation: frontend diags followed by check-stage diags).
  void take(DiagnosticEngine Other) {
    for (Diagnostic &D : Other.Diags)
      Diags.push_back(std::move(D));
    Other.Diags.clear();
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics one per line, sorted by source location
  /// (invalid locations first; emission order breaks ties) so output is
  /// deterministic regardless of which pass reported first.
  std::string toString() const;

  /// Machine-readable rendering: a JSON array of
  /// `{"severity", "line", "col", "message"}` objects in the same
  /// location-sorted order as toString().
  std::string toJson() const;

private:
  std::vector<Diagnostic> Diags;

  int count(DiagKind K) const {
    int N = 0;
    for (const Diagnostic &D : Diags)
      N += D.Kind == K ? 1 : 0;
    return N;
  }
};

} // namespace c4b

#endif // C4B_SUPPORT_DIAGNOSTICS_H
