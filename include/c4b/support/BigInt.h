//===--- BigInt.h - Arbitrary-precision signed integers ---------*- C++ -*-===//
//
// Part of the c4b project: a reproduction of "Compositional Certified
// Resource Bounds" (Carbonneaux, Hoffmann, Shao; PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sign-magnitude arbitrary-precision integers.  The exact simplex solver
/// pivots rationals whose numerators and denominators can outgrow any fixed
/// machine width; BigInt keeps the LP layer (and therefore the generated
/// proof certificates) exact.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SUPPORT_BIGINT_H
#define C4B_SUPPORT_BIGINT_H

#include <cstdint>
#include <string>
#include <vector>

namespace c4b {

/// An arbitrary-precision signed integer.
///
/// Representation: sign flag plus little-endian base-2^32 magnitude with no
/// leading zero limbs; zero is the empty magnitude with a positive sign.
class BigInt {
public:
  BigInt() = default;
  BigInt(std::int64_t V);

  /// Parses a decimal string with optional leading '-'. Asserts on
  /// malformed input; use only on trusted text (tests, certificates).
  static BigInt fromString(const std::string &S);

  bool isZero() const { return Mag.empty(); }
  bool isNegative() const { return Neg; }
  bool isOne() const { return !Neg && Mag.size() == 1 && Mag[0] == 1; }

  /// Returns -1, 0, or +1 according to the sign.
  int sign() const { return Mag.empty() ? 0 : (Neg ? -1 : 1); }

  /// Returns the value as int64 if it fits.  \p Ok is set accordingly.
  std::int64_t toInt64(bool &Ok) const;

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt &B) const;
  BigInt operator-(const BigInt &B) const;
  BigInt operator*(const BigInt &B) const;
  /// Truncated division (rounds toward zero), as in C. Asserts on B == 0.
  BigInt operator/(const BigInt &B) const;
  /// Remainder matching operator/ (sign follows the dividend).
  BigInt operator%(const BigInt &B) const;

  BigInt &operator+=(const BigInt &B) { return *this = *this + B; }
  BigInt &operator-=(const BigInt &B) { return *this = *this - B; }
  BigInt &operator*=(const BigInt &B) { return *this = *this * B; }
  BigInt &operator/=(const BigInt &B) { return *this = *this / B; }

  bool operator==(const BigInt &B) const {
    return Neg == B.Neg && Mag == B.Mag;
  }
  bool operator!=(const BigInt &B) const { return !(*this == B); }
  bool operator<(const BigInt &B) const { return compare(B) < 0; }
  bool operator<=(const BigInt &B) const { return compare(B) <= 0; }
  bool operator>(const BigInt &B) const { return compare(B) > 0; }
  bool operator>=(const BigInt &B) const { return compare(B) >= 0; }

  /// Three-way comparison: negative, zero, or positive.
  int compare(const BigInt &B) const;

  /// Greatest common divisor; always non-negative.
  static BigInt gcd(BigInt A, BigInt B);

  std::string toString() const;

  /// Approximate conversion for reporting only (never used in decisions).
  double toDouble() const;

private:
  bool Neg = false;
  std::vector<std::uint32_t> Mag;

  void normalize();
  static int compareMag(const std::vector<std::uint32_t> &A,
                        const std::vector<std::uint32_t> &B);
  static std::vector<std::uint32_t> addMag(const std::vector<std::uint32_t> &A,
                                           const std::vector<std::uint32_t> &B);
  /// Requires |A| >= |B|.
  static std::vector<std::uint32_t> subMag(const std::vector<std::uint32_t> &A,
                                           const std::vector<std::uint32_t> &B);
  static std::vector<std::uint32_t> mulMag(const std::vector<std::uint32_t> &A,
                                           const std::vector<std::uint32_t> &B);
  static void divModMag(const std::vector<std::uint32_t> &A,
                        const std::vector<std::uint32_t> &B,
                        std::vector<std::uint32_t> &Quot,
                        std::vector<std::uint32_t> &Rem);
};

} // namespace c4b

#endif // C4B_SUPPORT_BIGINT_H
