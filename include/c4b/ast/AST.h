//===--- AST.h - Abstract syntax of the C4B language ------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree produced by the parser.  Expressions are
/// side-effect free (as in Clight); assignments, calls, `tick`, and
/// `assert` are statements.  The tree is deliberately small: the analysis
/// operates on the normalized IR (see c4b/ir/IR.h), and this layer only
/// exists so inputs can be written in familiar C notation.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_AST_AST_H
#define C4B_AST_AST_H

#include "c4b/support/Diagnostics.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace c4b {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binary operators (arithmetic, comparison, and short-circuit logic).
enum class BinOp {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
};

/// Unary operators.
enum class UnOp { Neg, Not };

/// Discriminator for Expr.
enum class ExprKind {
  IntLit,    ///< Integer constant.
  Var,       ///< Scalar variable reference.
  ArrayElem, ///< a[index].
  Unary,     ///< UnOp applied to Sub[0].
  Binary,    ///< BinOp applied to Sub[0], Sub[1].
  Nondet,    ///< The paper's `*`: an arbitrary boolean.
};

/// A side-effect-free expression.
struct Expr {
  ExprKind Kind;
  SourceLoc Loc;
  std::int64_t IntValue = 0;              // IntLit.
  std::string Name;                       // Var / ArrayElem base.
  BinOp Bin = BinOp::Add;                 // Binary.
  UnOp Un = UnOp::Neg;                    // Unary.
  std::vector<std::unique_ptr<Expr>> Sub; // Operands; index of ArrayElem.

  explicit Expr(ExprKind K) : Kind(K) {}

  static std::unique_ptr<Expr> makeInt(std::int64_t V, SourceLoc Loc = {});
  static std::unique_ptr<Expr> makeVar(std::string Name, SourceLoc Loc = {});
  static std::unique_ptr<Expr> makeBinary(BinOp Op, std::unique_ptr<Expr> L,
                                          std::unique_ptr<Expr> R);
  static std::unique_ptr<Expr> makeUnary(UnOp Op, std::unique_ptr<Expr> E);

  std::unique_ptr<Expr> clone() const;

  /// True for comparison and logical operators (boolean-valued trees).
  bool isBoolean() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Discriminator for Stmt.
enum class StmtKind {
  Skip,
  Block,    ///< { s1; ...; sn }
  VarDecl,  ///< int x; / int x = e; / int a[n];
  Assign,   ///< x = e;  or  a[i] = e;
  Call,     ///< x = f(args);  or  f(args);
  If,
  While,
  DoWhile,
  For,
  Break,
  Return,   ///< return;  or  return e;
  Tick,     ///< tick(n);
  Assert,   ///< assert(e);
};

/// A statement.
struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;

  std::vector<std::unique_ptr<Stmt>> Body; // Block: children; loops/if: below.

  // VarDecl.
  std::string DeclName;
  std::int64_t ArraySize = 0; ///< > 0 when declaring an array.
  std::unique_ptr<Expr> Init; ///< Optional initializer.

  // Assign: either a scalar target (TargetName) or an array element
  // (TargetName with TargetIndex).
  std::string TargetName;
  std::unique_ptr<Expr> TargetIndex;
  std::unique_ptr<Expr> Value;

  // Call.
  std::string Callee;
  std::vector<std::unique_ptr<Expr>> Args;
  std::string ResultVar; ///< Empty for a procedure call.

  // If / While / DoWhile / For.
  std::unique_ptr<Expr> Cond;          ///< Null means `true` (for(;;)).
  std::unique_ptr<Stmt> Then, Else;    ///< If branches / loop body in Then.
  std::unique_ptr<Stmt> ForInit, ForStep;

  // Return.
  std::unique_ptr<Expr> RetValue;

  // Tick amount (integer; negative releases resources).
  std::int64_t TickAmount = 0;

  // Assert condition in Cond.

  explicit Stmt(StmtKind K) : Kind(K) {}

  static std::unique_ptr<Stmt> makeBlock();
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A function definition.
struct FunctionDecl {
  std::string Name;
  std::vector<std::string> Params;
  bool ReturnsValue = false; ///< int (true) vs void (false).
  std::unique_ptr<Stmt> Body;
  SourceLoc Loc;
};

/// A global scalar or array declaration.
struct GlobalDecl {
  std::string Name;
  std::int64_t ArraySize = 0; ///< 0 for a scalar.
  std::int64_t InitValue = 0;
  SourceLoc Loc;
};

/// A whole translation unit.
struct Program {
  std::vector<GlobalDecl> Globals;
  std::vector<FunctionDecl> Functions;

  const FunctionDecl *findFunction(const std::string &Name) const;
};

/// Renders the AST back to C4B source (tests round-trip through this).
std::string printExpr(const Expr &E);
std::string printStmt(const Stmt &S, int Indent = 0);
std::string printProgram(const Program &P);

} // namespace c4b

#endif // C4B_AST_AST_H
