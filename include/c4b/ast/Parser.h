//===--- Parser.h - Recursive-descent parser for C4B ------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser building the AST of AST.h.  The grammar is a
/// C subset: global int/array declarations, functions over int parameters,
/// structured statements, comma-sequenced simple statements
/// (`t=x, x=y, y=t;` from the paper's t30), `tick`, `assert`, and the `*`
/// non-deterministic condition.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_AST_PARSER_H
#define C4B_AST_PARSER_H

#include "c4b/ast/AST.h"
#include "c4b/ast/Lexer.h"

#include <optional>

namespace c4b {

/// Parses one translation unit.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Returns the parsed program, or nullopt when errors were reported.
  std::optional<Program> parseProgram();

private:
  std::vector<Token> Toks;
  DiagnosticEngine &Diags;
  std::size_t Pos = 0;

  /// Statement/expression nesting guard: recursive descent consumes real
  /// stack per nesting level, so unbounded input (10k open parens) would
  /// overflow it.  When the limit trips, one diagnostic is reported, the
  /// cursor jumps to Eof so every frame unwinds immediately, and `Panic`
  /// suppresses the cascade of expect-failures on the way out.
  static constexpr int MaxNestingDepth = 200;
  int Depth = 0;
  bool Panic = false;

  /// Enters one nesting level; false (with the diagnostic + Eof jump done)
  /// when the limit is exceeded.  Callers returning true must decrement
  /// `Depth` on exit.
  bool enterNested();

  const Token &peek(int Ahead = 0) const;
  const Token &advance();
  bool check(TokKind K) const { return peek().Kind == K; }
  bool accept(TokKind K);
  bool expect(TokKind K, const char *Context);

  void parseTopLevel(Program &P);
  void parseFunction(Program &P, bool ReturnsValue);
  std::unique_ptr<Stmt> parseBlock();
  std::unique_ptr<Stmt> parseStmt();
  std::unique_ptr<Stmt> parseStmtImpl();
  std::unique_ptr<Stmt> parseSimpleStmtList();
  std::unique_ptr<Stmt> parseSimpleStmt();
  std::unique_ptr<Stmt> parseVarDecl();

  std::unique_ptr<Expr> parseExpr();
  std::unique_ptr<Expr> parseOr();
  std::unique_ptr<Expr> parseAnd();
  std::unique_ptr<Expr> parseComparison();
  std::unique_ptr<Expr> parseAdditive();
  std::unique_ptr<Expr> parseMultiplicative();
  std::unique_ptr<Expr> parseUnary();
  std::unique_ptr<Expr> parseUnaryImpl();
  std::unique_ptr<Expr> parsePrimary();

  /// Parses the argument list of a call (after the callee identifier).
  bool parseCallArgs(Stmt &Call);

  std::unique_ptr<Stmt> errorStmt(const char *Msg);
  std::unique_ptr<Expr> errorExpr(const char *Msg);
};

/// Convenience: lex + parse a source string.
std::optional<Program> parseString(const std::string &Source,
                                   DiagnosticEngine &Diags);

} // namespace c4b

#endif // C4B_AST_PARSER_H
