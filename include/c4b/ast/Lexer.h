//===--- Lexer.h - Tokens and lexer for the C4B language --------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the C-like input language of the analyzer.  The language
/// covers the fragment of Clight the paper's derivation system operates on:
/// integer variables and arrays, structured control flow, `tick(n)` resource
/// annotations, `assert`, and the `*` non-deterministic condition used in
/// the paper's examples (t27, t13, t62, ...).
///
//===----------------------------------------------------------------------===//

#ifndef C4B_AST_LEXER_H
#define C4B_AST_LEXER_H

#include "c4b/support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace c4b {

/// Token kinds of the C4B language.
enum class TokKind {
  Eof,
  Identifier,
  IntLiteral,
  // Keywords.
  KwInt,
  KwVoid,
  KwWhile,
  KwFor,
  KwDo,
  KwIf,
  KwElse,
  KwBreak,
  KwReturn,
  KwAssert,
  KwTick,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Assign,     // =
  PlusAssign, // +=
  MinusAssign,// -=
  PlusPlus,   // ++
  MinusMinus, // --
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  AndAnd,
  OrOr,
  Not,
};

/// Returns a human-readable spelling for diagnostics.
const char *tokKindName(TokKind K);

/// One lexed token.
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;        // Identifier spelling.
  std::int64_t IntValue = 0; // IntLiteral value.
};

/// Converts a source buffer into a token stream.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the whole buffer.  The last token is always Eof.
  std::vector<Token> lexAll();

private:
  std::string Src;
  DiagnosticEngine &Diags;
  std::size_t Pos = 0;
  int Line = 1;
  int Col = 1;

  char peek(int Ahead = 0) const;
  char advance();
  bool match(char C);
  void skipTrivia();
  Token makeToken(TokKind K, SourceLoc Loc) const;
  Token lexOne();
};

} // namespace c4b

#endif // C4B_AST_LEXER_H
