//===--- Metric.h - Parametric resource metrics -----------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource metric M that parameterizes both the cost semantics and the
/// derivation rules (Section 4, "Cost Aware Clight").  Each field is the
/// cost of one kind of step; `tick(n)` costs `TickScale * n` and may be
/// negative, modelling resources that become available during execution.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SEM_METRIC_H
#define C4B_SEM_METRIC_H

#include "c4b/support/Rational.h"

#include <string>

namespace c4b {

/// Per-construct step costs.  The analysis and the interpreter consult the
/// same instance, so a derived bound and a measured execution always talk
/// about the same resource.
struct ResourceMetric {
  std::string Name = "zero";
  Rational Mu;      ///< Assignment update (non cost-free only).
  Rational Me;      ///< Expression evaluation (flat per evaluation).
  Rational Ml;      ///< Loop back edge.
  Rational Mb;      ///< Break.
  Rational Ma;      ///< Assert.
  Rational Mf;      ///< Function call.
  Rational Mr;      ///< Function return.
  Rational McTrue;  ///< Taking the then branch.
  Rational McFalse; ///< Taking the else branch.
  Rational TickScale = Rational(1); ///< Mt(n) = TickScale * n.

  /// The paper's tick metric: only tick(n) costs anything.
  static ResourceMetric ticks();

  /// The metric used for the tool comparison (Section 8): cost 1 on every
  /// back edge in the control flow (loop iterations and function calls).
  static ResourceMetric backEdges();

  /// A step-counting metric: every operation costs 1 (ticks ignored);
  /// exercises the Mu/Me/Mb/Ma/Mc cost channels of the rules.
  static ResourceMetric steps();

  /// Call-depth metric: Mf = 1, Mr = -1 bounds the peak call-stack depth
  /// (the resource of Figure 7's bsearch example).
  static ResourceMetric stackDepth();
};

} // namespace c4b

#endif // C4B_SEM_METRIC_H
