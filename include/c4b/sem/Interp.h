//===--- Interp.h - Cost-aware reference interpreter ------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable form of the paper's cost-aware operational semantics
/// (Section 7).  Each step charges its metric cost; the interpreter tracks
/// both the net cost and the high-water mark of consumption, which is the
/// quantity a sound bound must dominate (a configuration with negative
/// available resources is a resource crash).
///
/// The evaluator is the ground truth for the differential soundness tests:
/// for every program, metric, and input, Bound(sigma) >= PeakCost.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_SEM_INTERP_H
#define C4B_SEM_INTERP_H

#include "c4b/ir/IR.h"
#include "c4b/sem/Metric.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace c4b {

/// Outcome classification of one execution.
enum class ExecStatus {
  Finished,        ///< Ran to completion.
  AssertFailed,    ///< A (user-provided) assert evaluated to false.
  OutOfFuel,       ///< Step budget exhausted (possibly non-terminating).
  DivisionByZero,
  BadArrayAccess,  ///< Out-of-bounds or unknown array.
  UnknownFunction,
};

/// Result of executing a function under a metric.
struct ExecResult {
  ExecStatus Status = ExecStatus::Finished;
  Rational NetCost;         ///< Total consumed minus released.
  Rational PeakCost;        ///< High-water mark; what a bound must cover.
  std::int64_t ReturnValue = 0;
  bool HasReturnValue = false;
  std::int64_t StepsUsed = 0;

  bool finished() const { return Status == ExecStatus::Finished; }
};

/// Big-step evaluator over the IR.
class Interpreter {
public:
  /// Note: the metric is copied; callers may pass temporaries.
  Interpreter(const IRProgram &P, ResourceMetric M);

  /// Resolves the `*` condition; defaults to a deterministic LCG.
  void setNondetPolicy(std::function<bool()> Policy) {
    Nondet = std::move(Policy);
  }
  /// Reseeds the default pseudo-random nondet policy.
  void seed(std::uint64_t S) { RngState = S ? S : 1; }

  void setFuel(std::int64_t Steps) { Fuel = Steps; }

  /// Overrides a global scalar before execution.
  void setGlobal(const std::string &Name, std::int64_t V);
  /// Fills a global array (shorter data is zero-extended).
  void setGlobalArray(const std::string &Name,
                      const std::vector<std::int64_t> &Data);
  /// Reads a global scalar after execution.
  std::int64_t getGlobal(const std::string &Name) const;
  /// Reads a global array element after execution.
  std::int64_t getGlobalArray(const std::string &Name, std::int64_t I) const;

  /// Runs `Fn(Args...)` from a fresh global state (plus any overrides made
  /// through setGlobal/setGlobalArray since construction or the last run).
  ExecResult run(const std::string &Fn, const std::vector<std::int64_t> &Args);

private:
  struct Frame {
    std::map<std::string, std::int64_t> Scalars;
    std::map<std::string, std::vector<std::int64_t>> Arrays;
  };

  enum class Flow { Normal, Break, Return };

  const IRProgram &Prog;
  ResourceMetric Metric;
  std::function<bool()> Nondet;
  std::uint64_t RngState = 0x9e3779b97f4a7c15ull;
  std::int64_t Fuel = 2'000'000;

  // Per-run state.
  std::map<std::string, std::int64_t> Globals;
  std::map<std::string, std::vector<std::int64_t>> GlobalArrays;
  Rational Cost, Peak;
  std::int64_t StepsLeft = 0;
  std::int64_t Steps = 0;
  ExecStatus Status = ExecStatus::Finished;
  std::int64_t LastReturn = 0;
  bool LastHasReturn = false;

  void charge(const Rational &R);
  bool useFuel();
  bool defaultNondet();

  std::int64_t *lookupScalar(Frame &F, const std::string &N);
  std::vector<std::int64_t> *lookupArray(Frame &F, const std::string &N);

  bool evalExpr(Frame &F, const Expr &E, std::int64_t &Out);
  bool evalCond(Frame &F, const SimpleCond &C, bool &Out);
  Flow execStmt(Frame &F, const IRStmt &S);
  Flow execCall(Frame &F, const IRStmt &S);
};

} // namespace c4b

#endif // C4B_SEM_INTERP_H
