//===--- Certificate.h - Checkable bound certificates -----------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Proof certificates for derived bounds.  Section 5 of the paper: "a
/// satisfying assignment is a proof certificate ... this certificate can
/// be checked in linear time by a simple validator."
///
/// A certificate is the full rational solution of the constraint system.
/// The validator re-runs the deterministic derivation walk with a sink
/// that, instead of solving, *evaluates* every emitted constraint against
/// the certified values -- one pass, one arithmetic check per rule
/// instance, no LP.  Because generator and checker share the walker, the
/// checker verifies exactly the rules the inference used.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_CERT_CERTIFICATE_H
#define C4B_CERT_CERTIFICATE_H

#include "c4b/analysis/Analyzer.h"
#include "c4b/pipeline/Pipeline.h"

#include <optional>
#include <string>
#include <vector>

namespace c4b {

/// A certified analysis: metric + options pin down the derivation walk,
/// Values certify it, Bounds are the claims being certified.
struct Certificate {
  std::string MetricName; ///< One of the preset metric names.
  AnalysisOptions Options;
  std::vector<Rational> Values;
  std::map<std::string, Bound> Bounds;
  /// True when the result came from the ranking-function fallback after a
  /// budget kill.  Degraded results carry no satisfying assignment, so a
  /// degraded certificate certifies nothing and the validator rejects it.
  bool Degraded = false;
  /// True when the analysis was SCC-scheduled: Values concatenates the
  /// per-SCC fragment solutions in bottom-up SCC order and is validated
  /// fragment by fragment (generateScheduledFragments).  SummaryKeys then
  /// records each fragment's content key; the validator re-derives the
  /// keys and compares, so a certificate also certifies *which* summaries
  /// its analysis consumed.
  bool Scheduled = false;
  std::vector<std::uint64_t> SummaryKeys;
  /// True when the analysis ran with cost-relevance slicing effective
  /// (AnalysisOptions::CostSlicing and the relevance pass converged).
  /// SliceDigests then records the per-function slice digest
  /// (c4b/check/CostRelevance.h); the validator re-derives the relevance
  /// analysis independently and rejects any disagreement, so a
  /// certificate also certifies *what* its analysis sliced.
  bool Sliced = false;
  std::map<std::string, std::uint64_t> SliceDigests;

  /// Builds the certificate of a successful analysis.
  static Certificate fromResult(const AnalysisResult &R,
                                const ResourceMetric &M,
                                const AnalysisOptions &O);

  /// Line-oriented text form (round-trips through parse).
  std::string serialize() const;
  static std::optional<Certificate> deserialize(const std::string &Text);
};

/// Outcome of validating a certificate.
struct CheckReport {
  bool Valid = false;
  int ConstraintsChecked = 0;
  std::vector<std::string> Violations;
};

/// Validates \p C against a materialized constraint system: checks that
/// the system was generated under the certificate's metric and options,
/// evaluates every recorded constraint against the certified values,
/// checks non-negativity of all coefficients, and that the claimed bounds
/// equal the entry potentials of the certified values.  No IR walk
/// happens here — the system already is the derivation, materialized.
CheckReport checkCertificate(const ConstraintSystem &CS, const Certificate &C);

/// Convenience: materializes the derivation of \p P once (the only IR
/// walk) under the certificate's metric/options, then validates against
/// that system.
CheckReport checkCertificate(const IRProgram &P, const Certificate &C);

/// Resolves a preset metric by name ("ticks", "backedges", "steps",
/// "stackdepth").
std::optional<ResourceMetric> metricByName(const std::string &Name);

} // namespace c4b

#endif // C4B_CERT_CERTIFICATE_H
