//===--- Check.h - The check stage: verify, lint, seed ----------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The umbrella entry point of the check subsystem, run by the pipeline as
/// an explicit stage between lowering and constraint generation.  Three
/// cooperating passes:
///
///   1. the structural IR verifier (Verifier.h) — the trust boundary that
///      rejects IR outside the fragment the derivation rules are sound on;
///   2. dataflow lints (read-before-write, dead stores, unreachable code,
///      statically-dead ticks, unused call results), built on the engines
///      in Dataflow.h;
///   3. the interval pre-pass (Intervals.h) whose loop-head facts seed the
///      logical contexts of the amortized analysis.
///
/// Verifier violations are errors (analysis must not proceed); lints are
/// warnings (the program is still analyzable); seeds are optional facts
/// with a fail-safe contract.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_CHECK_CHECK_H
#define C4B_CHECK_CHECK_H

#include "c4b/check/Intervals.h"
#include "c4b/check/Verifier.h"
#include "c4b/support/Diagnostics.h"

namespace c4b {
namespace check {

/// What to run.  Everything is independently switchable; the pipeline
/// derives this from `PipelineOptions`.
struct Options {
  bool Verify = true; ///< Structural IR verifier.
  bool Lint = false;  ///< Dataflow lints (warnings).
  bool Seeds = false; ///< Interval seeds for constraint generation.
};

/// The stage's result.
struct Report {
  /// False when the verifier found violations; the pipeline refuses to
  /// generate constraints from unverified IR.
  bool Verified = true;

  /// Check-stage diagnostics: verifier errors and lint warnings.
  DiagnosticEngine Diags;

  /// Interval facts (populated when Options::Seeds).
  IntervalSeeds Seeds;
};

/// Runs the configured passes over \p P.
Report runChecks(const IRProgram &P, const Options &O);

/// Runs only the lints, reusing precomputed interval results for the
/// dead-tick lint.
void runLints(const IRProgram &P, const IntervalSeeds &Seeds,
              DiagnosticEngine &Diags);

} // namespace check
} // namespace c4b

#endif // C4B_CHECK_CHECK_H
