//===--- Dataflow.h - Dataflow engine over the structured IR ----*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small forward/backward dataflow framework over the tree-shaped IR.
/// Because the IR is structured (one `loop` construct exited by `break`,
/// no goto), no CFG is materialized: the engines walk the statement tree
/// and iterate loop bodies to a fixpoint, collecting `break` states as the
/// loop's exit and `return` states as the function's exit.  This mirrors
/// how `FunctionWalker` in the analysis layer consumes the same structure,
/// so facts recorded here line up with the program points the constraint
/// generator visits.
///
/// A domain supplies the lattice and transfer functions:
///
/// \code
///   struct Domain {
///     using State = ...;                       // lattice element
///     State boundary(const IRFunction &F);     // entry (fwd) / exit (bwd)
///     State join(const State &, const State &);
///     bool equal(const State &, const State &);
///     State widen(const State &Old, const State &New); // loop acceleration
///     void transfer(const IRStmt &S, State &X);        // leaf statements
///     bool refine(const SimpleCond &C, bool Taken, State &X); // fwd only;
///                                              // false = branch infeasible
///     void useCond(const SimpleCond &C, State &X);     // bwd only
///     void observe(const IRStmt &S, const State *X);   // per-point record;
///                                              // null = unreachable
///     void observeLoopHead(const IRStmt &Loop, const State *Head); // fwd
///   };
/// \endcode
///
/// `observe` fires on every pass over a loop body; domains must record
/// with overwrite semantics so the final (converged) pass wins.  States
/// are passed as `std::optional` internally, with `nullopt` playing the
/// role of bottom (unreachable / no information), which keeps domains free
/// of an explicit bottom element.
///
/// Finite set lattices converge without widening; `widen` only matters for
/// infinite-height domains (intervals).  The engines cap fixpoint passes
/// as a safety net and report non-convergence through `converged()`;
/// consumers that need soundness (interval seeding) must discard results
/// of a non-converged run.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_CHECK_DATAFLOW_H
#define C4B_CHECK_DATAFLOW_H

#include "c4b/ir/IR.h"
#include "c4b/support/Budget.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace c4b {
namespace check {

/// Scalar variables read by \p E (array reads contribute their index
/// variables; the array itself is not a scalar use).
void collectExprVars(const Expr &E, std::set<std::string> &Out);

/// Scalar variables read by the leaf statement \p S (operands, kill
/// values, store index/value, condition, call arguments, return value).
/// Inc/Dec assignments read their own target.  Children of compound
/// statements are not visited.
void collectUses(const IRStmt &S, std::set<std::string> &Out);

//===----------------------------------------------------------------------===//
// Forward engine
//===----------------------------------------------------------------------===//

template <typename D> class ForwardEngine {
public:
  using State = typename D::State;
  using Opt = std::optional<State>;

  explicit ForwardEngine(D &Dom) : Dom(Dom) {}

  /// Runs the analysis over \p F.  Returns the join over all function
  /// exits (returns plus body fall-through); nullopt when the function
  /// provably never returns.
  Opt run(const IRFunction &F) {
    Exits.reset();
    Breaks.clear();
    Opt Out = walk(*F.Body, Opt(Dom.boundary(F)));
    mergeInto(Exits, Out);
    return std::move(Exits);
  }

  /// False when some loop hit the pass cap before reaching a fixpoint;
  /// recorded observations are then not trustworthy invariants.
  bool converged() const { return Converged; }

private:
  D &Dom;
  Opt Exits;
  std::vector<Opt> Breaks;
  bool Converged = true;

  // Widen only after a few plain joins: cheap precision for short chains,
  // guaranteed convergence afterwards.
  static constexpr int WidenAfter = 3;
  static constexpr int MaxPasses = 1000;

  void mergeInto(Opt &A, const Opt &B) {
    if (!B)
      return;
    if (!A)
      A = *B;
    else
      A = Dom.join(*A, *B);
  }

  bool equalOpt(const Opt &A, const Opt &B) {
    if (!A || !B)
      return A.has_value() == B.has_value();
    return Dom.equal(*A, *B);
  }

  Opt walk(const IRStmt &S, Opt In) {
    Dom.observe(S, In ? &*In : nullptr);
    switch (S.Kind) {
    case IRStmtKind::Block: {
      Opt Cur = std::move(In);
      for (const auto &C : S.Children)
        Cur = walk(*C, std::move(Cur));
      return Cur;
    }

    case IRStmtKind::If: {
      Opt ThenIn = In, ElseIn = std::move(In);
      if (ThenIn && !Dom.refine(S.Cond, /*Taken=*/true, *ThenIn))
        ThenIn.reset();
      if (ElseIn && !Dom.refine(S.Cond, /*Taken=*/false, *ElseIn))
        ElseIn.reset();
      Opt Out = walk(*S.Children[0], std::move(ThenIn));
      mergeInto(Out, walk(*S.Children[1], std::move(ElseIn)));
      return Out;
    }

    case IRStmtKind::Loop: {
      Opt Head = std::move(In);
      Breaks.push_back(std::nullopt);
      for (int Pass = 0;; ++Pass) {
        budgetOnFixpointPass();
        Breaks.back().reset();
        Opt Out = walk(*S.Children[0], Head);
        Opt Next = Head;
        mergeInto(Next, Out);
        if (Pass >= WidenAfter && Next && Head)
          Next = Dom.widen(*Head, *Next);
        if (equalOpt(Next, Head))
          break;
        if (Pass >= MaxPasses) {
          Converged = false;
          break;
        }
        Head = std::move(Next);
      }
      Dom.observeLoopHead(S, Head ? &*Head : nullptr);
      Opt Exit = std::move(Breaks.back());
      Breaks.pop_back();
      return Exit;
    }

    case IRStmtKind::Break:
      if (!Breaks.empty())
        mergeInto(Breaks.back(), In);
      return std::nullopt;

    case IRStmtKind::Return:
      mergeInto(Exits, In);
      return std::nullopt;

    default:
      if (In)
        Dom.transfer(S, *In);
      return In;
    }
  }
};

//===----------------------------------------------------------------------===//
// Backward engine
//===----------------------------------------------------------------------===//

template <typename D> class BackwardEngine {
public:
  using State = typename D::State;
  using Opt = std::optional<State>;

  explicit BackwardEngine(D &Dom) : Dom(Dom) {}

  /// Runs the analysis over \p F; returns the state at function entry.
  Opt run(const IRFunction &F) {
    ExitState = Dom.boundary(F);
    BreakOuts.clear();
    return walk(*F.Body, Opt(ExitState));
  }

  bool converged() const { return Converged; }

private:
  D &Dom;
  State ExitState{};
  std::vector<Opt> BreakOuts;
  bool Converged = true;

  static constexpr int MaxPasses = 1000;

  void mergeInto(Opt &A, const Opt &B) {
    if (!B)
      return;
    if (!A)
      A = *B;
    else
      A = Dom.join(*A, *B);
  }

  bool equalOpt(const Opt &A, const Opt &B) {
    if (!A || !B)
      return A.has_value() == B.has_value();
    return Dom.equal(*A, *B);
  }

  /// \p Out is the state after \p S; returns the state before it.
  Opt walk(const IRStmt &S, Opt Out) {
    Dom.observe(S, Out ? &*Out : nullptr);
    switch (S.Kind) {
    case IRStmtKind::Block: {
      Opt Cur = std::move(Out);
      for (auto It = S.Children.rbegin(); It != S.Children.rend(); ++It)
        Cur = walk(**It, std::move(Cur));
      return Cur;
    }

    case IRStmtKind::If: {
      Opt In = walk(*S.Children[0], Out);
      mergeInto(In, walk(*S.Children[1], std::move(Out)));
      if (In)
        Dom.useCond(S.Cond, *In);
      return In;
    }

    case IRStmtKind::Loop: {
      // The state after the body (fall-through back edge) is the state
      // before the body; `break` takes the after-loop state instead.
      BreakOuts.push_back(std::move(Out));
      Opt Head;
      for (int Pass = 0;; ++Pass) {
        budgetOnFixpointPass();
        Opt In = walk(*S.Children[0], Head);
        Opt Next = Head;
        mergeInto(Next, In);
        if (equalOpt(Next, Head))
          break;
        if (Pass >= MaxPasses) {
          Converged = false;
          break;
        }
        Head = std::move(Next);
      }
      BreakOuts.pop_back();
      return Head;
    }

    case IRStmtKind::Break:
      return BreakOuts.empty() ? Opt() : BreakOuts.back();

    case IRStmtKind::Return: {
      Opt In = Opt(ExitState);
      Dom.transfer(S, *In);
      return In;
    }

    default:
      if (Out)
        Dom.transfer(S, *Out);
      return Out;
    }
  }
};

//===----------------------------------------------------------------------===//
// Instantiated analyses
//===----------------------------------------------------------------------===//

/// Reaching definitions (forward, may).  Definition sites are Assign and
/// Call statements; the null pointer stands for the function entry
/// (parameters and globals are defined on entry).  Calls strongly define
/// their result variable and weakly define every global.
struct ReachingDefsResult {
  /// Per-variable definition sites that may reach the point just before
  /// each statement.
  std::map<const IRStmt *, std::map<std::string, std::set<const IRStmt *>>>
      Before;
};
ReachingDefsResult reachingDefinitions(const IRProgram &P,
                                       const IRFunction &F);

/// Live variables (backward, may).  Globals are live at function exit
/// (their values are observable by callers); the return value's variables
/// become live at each `return`.
struct LivenessResult {
  /// Variables live just after each statement.
  std::map<const IRStmt *, std::set<std::string>> After;
};
LivenessResult liveVariables(const IRProgram &P, const IRFunction &F);

/// Definite initialization (forward, may-be-uninitialized).  Locals start
/// uninitialized; any assignment or call-result binding initializes its
/// target.  Parameters and globals are always initialized.
struct MaybeUninitResult {
  /// Variables that may still be uninitialized just before each statement.
  std::map<const IRStmt *, std::set<std::string>> Before;
};
MaybeUninitResult maybeUninitialized(const IRProgram &P, const IRFunction &F);

} // namespace check
} // namespace c4b

#endif // C4B_CHECK_DATAFLOW_H
