//===--- CostRelevance.h - Interprocedural cost-relevance -------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bottom-up interprocedural cost-relevance analysis over the call-graph
/// SCC order.  Per function it computes a *cost effect* — PureZero (every
/// execution costs exactly 0 under the metric), MayTick (some reachable
/// construct may cost), or Unknown (an undefined callee, or the analysis
/// was budget-aborted) — by joining the local effects of every SCC member
/// with the effects of external callees (the closed form of the SCC
/// fixpoint: strong connectivity makes every member's effect the joint
/// one).  Per statement it computes a *cost-relevance* verdict via backward
/// cost-reachability (does any cost-bearing operation execute at or after
/// this point?), refined by the interval pre-pass (statements it proved
/// unreachable — zero-trip loop bodies, statically-false guards — cannot
/// bear cost).
///
/// Two consumers:
///
///  * The derivation walk slices statements that are both cost-dead and
///    *emission-silent* — subtrees the walker would traverse without
///    emitting a constraint, allocating a variable, placing a weaken
///    point, or mutating the logical context / potential annotation
///    (Skip, Block, and Store when `Mu + Me = 0`).  Skipping them is
///    bit-identical by construction on every program, so the whole-corpus
///    sliced-vs-unsliced differential is a guarantee, not a hope.  Call
///    sites whose callee effect is PureZero (and `Mf = Mr = 0`) collapse
///    to an identity potential transfer — no spec instantiation, no
///    callee fragment splice — which is where the real constraint savings
///    come from; soundness is the all-zero annotation of the callee's
///    homogeneous fragment.
///
///  * The certificate checker re-derives relevance independently and
///    compares per-function slice digests: an over-aggressive slice must
///    be *caught*, not trusted (Site::CostSlice fault-injects exactly
///    that tampering).
///
/// The pass is fail-safe under budgets: a deadline abort degrades every
/// effect to Unknown, clears the slice, and reports Converged = false; the
/// pipeline then runs (and certifies) the unsliced derivation.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_CHECK_COSTRELEVANCE_H
#define C4B_CHECK_COSTRELEVANCE_H

#include "c4b/check/Intervals.h"
#include "c4b/ir/IR.h"
#include "c4b/sem/Metric.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace c4b {

class DiagnosticEngine;

namespace check {

/// The cost-effect lattice, ordered PureZero < MayTick < Unknown; the SCC
/// fold joins towards Unknown.
enum class CostEffect {
  PureZero, ///< Every execution costs exactly 0 under the metric.
  MayTick,  ///< Some reachable construct may cost (or release) resource.
  Unknown,  ///< Undefined callee or budget-aborted analysis: assume cost.
};

const char *costEffectName(CostEffect E);

/// Join towards Unknown.
inline CostEffect joinEffect(CostEffect A, CostEffect B) {
  return static_cast<int>(A) >= static_cast<int>(B) ? A : B;
}

/// Results of the cost-relevance pass over a whole program.
struct CostRelevance {
  /// Per-function cost effect (the joint effect of the function's SCC).
  std::map<std::string, CostEffect> Effects;

  /// Maximal sliceable subtree roots: cost-dead *and* emission-silent.
  /// The derivation walk skips these whole subtrees.
  std::set<const IRStmt *> Sliceable;

  /// Per-statement cost-deadness (maximal cost-dead subtree roots, not
  /// restricted to silent ones); feeds the lints.
  std::set<const IRStmt *> CostDead;

  /// Per-function slice digest: folds the function's effect and the
  /// pre-order indices of its sliced subtree roots.  Certificates embed
  /// these so the checker's independent re-derivation can disagree
  /// loudly.
  std::map<std::string, std::uint64_t> Digests;

  /// False when a budget deadline aborted the pass; Effects are then all
  /// Unknown and the slice is empty (fail-safe: the pipeline disables
  /// slicing for the run and records that in the certificate).
  bool Converged = true;

  /// Effect of \p Fn; Unknown when the function is not in the map
  /// (undefined callee).
  CostEffect effectOf(const std::string &Fn) const {
    auto It = Effects.find(Fn);
    return It == Effects.end() ? CostEffect::Unknown : It->second;
  }
};

/// Runs the cost-relevance analysis over every function of \p P under
/// metric \p M.  \p Seeds, when non-null and converged, refines
/// cost-deadness (interval-proven-unreachable statements cannot bear
/// cost); it never affects the function *effects*, which stay
/// conservative so call-site emission cannot depend on interval facts.
CostRelevance computeCostRelevance(const IRProgram &P, const ResourceMetric &M,
                                   const IntervalSeeds *Seeds = nullptr);

/// Emits the cost lints derived from the same facts: `cost-dead function`
/// (effect PureZero), `tick unreachable from entry` (a tick the interval
/// pre-pass proved unreachable), and `statically-zero tick amount`.
void runCostLints(const IRProgram &P, const ResourceMetric &M,
                  const CostRelevance &CR, const IntervalSeeds *Seeds,
                  DiagnosticEngine &Diags);

/// Content key of SCC \p SccIdx's slice configuration: folds each member's
/// effect and slice digest plus the effect of every callee, so SCCSummary
/// keys that fold it stay transitively invalidated when a callee's cost
/// effect changes.
std::uint64_t sliceKeyFor(const CostRelevance &CR, const CallGraph &CG,
                          int SccIdx);

} // namespace check
} // namespace c4b

#endif // C4B_CHECK_COSTRELEVANCE_H
