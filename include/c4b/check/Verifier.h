//===--- Verifier.h - Structural IR invariant checker -----------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structural validator for the normalized IR.  The derivation system of
/// Figure 4 is only sound on the documented fragment — unified `loop`
/// exited by `break`, assignments restricted to `x <- a` / `x <- x ± a`,
/// side-effect-free conditions normalized to Cmp/Nondet/True, calls with
/// atom arguments — and nothing downstream re-checks those invariants: a
/// lowering bug would silently become a wrong bound.  The verifier is the
/// trust boundary between lowering and constraint generation; it walks a
/// whole `IRProgram` and reports every violated invariant through
/// `DiagnosticEngine` with the offending statement's location.
///
/// Checked invariants (one error per violation):
///   * tree shape: `If` has exactly then/else children, `Loop` exactly a
///     body, leaf statements have none, and no child pointer is null;
///   * `break` appears only inside a `loop`;
///   * assignment forms: Set/Inc/Dec carry a declared scalar target and a
///     well-formed atom operand (Set to itself is filtered by lowering),
///     Kill carries its opaque expression;
///   * conditions of `if`/`assert` are normalized (Cmp carries the
///     evaluable expression; True/Nondet carry nothing);
///   * calls name a defined function with matching arity, pass atoms that
///     reference declared scalars, and bind results only from int
///     functions into declared scalars;
///   * `return e` appears only in int functions and `e` is a valid atom;
///   * stores target declared arrays and carry index/value expressions;
///   * every variable mentioned anywhere (operands, linear guard forms,
///     atoms) is a parameter, declared local, or global;
///   * every statement carries a valid `SourceLoc`, so later diagnostics
///     (lints, structural-failure notes) always point somewhere real.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_CHECK_VERIFIER_H
#define C4B_CHECK_VERIFIER_H

#include "c4b/ir/IR.h"
#include "c4b/support/Diagnostics.h"

namespace c4b {
namespace check {

/// Verifies every function of \p P.  Violations are reported as errors
/// through \p Diags; returns true when the program is well-formed.
bool verifyIR(const IRProgram &P, DiagnosticEngine &Diags);

/// Verifies one function against the program it belongs to (for callee
/// existence/arity checks).  Returns true when no violation was found.
bool verifyFunction(const IRProgram &P, const IRFunction &F,
                    DiagnosticEngine &Diags);

} // namespace check
} // namespace c4b

#endif // C4B_CHECK_VERIFIER_H
