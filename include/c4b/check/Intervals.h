//===--- Intervals.h - Interval pre-pass feeding LogicContext ---*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic interval (value-range) abstract interpretation instantiated
/// on the check subsystem's dataflow engine, in the spirit of RAML's value
/// pre-analyses: facts inferred here are *offered* to the amortized
/// analysis, which may use them to discharge weakening obligations its own
/// "rough loop invariant" misses.  The walker in ConstraintGen drops every
/// fact mentioning a modified variable at loop heads; interval widening
/// instead retains one-sided bounds (`x >= 0` across `x++`), which is
/// exactly the information the RELAX rule needs.
///
/// The contract is fail-safe: every emitted fact is a sound invariant at
/// its loop head, conjoining sound facts into a LogicContext only loosens
/// the LP (bounds can tighten, never regress), and discarding the seeds
/// entirely reproduces the unseeded behaviour bit-for-bit.  If a fixpoint
/// computation ever fails to converge the whole seed set is dropped rather
/// than trusted.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_CHECK_INTERVALS_H
#define C4B_CHECK_INTERVALS_H

#include "c4b/ir/IR.h"
#include "c4b/logic/Context.h"

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace c4b {
namespace check {

/// A (possibly half-open) integer interval; an absent bound is infinite.
/// Bottom is not representable here — an unreachable program point is a
/// null state in the engine, never an empty interval.
struct Interval {
  std::optional<std::int64_t> Lo, Hi;

  bool operator==(const Interval &B) const { return Lo == B.Lo && Hi == B.Hi; }
  std::string toString() const;
};

/// Results of the interval pre-pass over a whole program.
struct IntervalSeeds {
  /// Sound linear invariants per loop head, keyed by the `Loop` statement.
  /// Each fact holds at the loop's body entry on every iteration.
  std::map<const IRStmt *, std::vector<LinFact>> LoopHeadFacts;

  /// Statements the analysis proved unreachable (guards statically false,
  /// code after infinite loops).  Used by the dead-tick lint.
  std::set<const IRStmt *> UnreachableStmts;

  /// False when some fixpoint hit the pass cap; LoopHeadFacts is then
  /// empty (fail-safe) and UnreachableStmts only keeps structurally
  /// trivial entries.
  bool Converged = true;
};

/// Runs the interval analysis over every function of \p P.
IntervalSeeds computeIntervalSeeds(const IRProgram &P);

} // namespace check
} // namespace c4b

#endif // C4B_CHECK_INTERVALS_H
