//===--- Corpus.h - The paper's example programs ----------------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every program analyzed in the paper, as C4B-language sources, together
/// with the published bounds of C4B and of the compared tools (KoAT, Rank,
/// LOOPUS, SPEED) where the paper reports them.  The test suite, the
/// benchmark harness, and the examples all draw from this single corpus.
///
/// Where the paper does not print a program (most of the Table 3 suite and
/// the cBench functions), the source is a reconstruction faithful to the
/// name, the published bound, and the loop/recursion pattern the paper
/// describes; DESIGN.md documents this substitution.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_CORPUS_CORPUS_H
#define C4B_CORPUS_CORPUS_H

#include <string>
#include <vector>

namespace c4b {

/// Reference value of a tool column in the paper's tables.
/// "-" = tool failed; "?" = not tested / not reported.
struct CorpusEntry {
  const char *Name;       ///< e.g. "t09".
  const char *Category;   ///< "intro", "fig2", "fig3", "fig8", "table3",
                          ///< "sect6", "cbench".
  const char *Function;   ///< Entry function whose bound the paper reports.
  const char *Source;     ///< C4B-language program text.
  const char *PaperC4B;   ///< Bound the paper reports for C4B.
  const char *PaperRank;  ///< Rank column (Table 3 / Figure 8).
  const char *PaperLoopus;///< LOOPUS column.
  const char *PaperKoat;  ///< KoAT column.
  const char *PaperSpeed; ///< SPEED column.
  /// True when the program carries logical-state instrumentation
  /// (Section 6): soundness runs must seed consistent inputs.
  bool LogicalState = false;
  /// Paper's LoC figure for the cBench rows (0 elsewhere).
  int PaperLoC = 0;
};

/// All corpus entries.
const std::vector<CorpusEntry> &corpus();

/// Entry by name; null when absent.
const CorpusEntry *findEntry(const std::string &Name);

/// All entries of one category, in corpus order.
std::vector<const CorpusEntry *> entriesIn(const std::string &Category);

} // namespace c4b

#endif // C4B_CORPUS_CORPUS_H
