//===--- Synthetic.h - Synthetic large-corpus generator ---------*- C++ -*-===//
//
// Part of the c4b project (PLDI'15 "Compositional Certified Resource
// Bounds" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic generator of large synthetic C4B-language corpora for
/// the throughput and scaling benchmarks.  The paper's own corpus tops
/// out at a few dozen small programs — enough to validate bounds, far too
/// small to exercise the batch analyzer's scheduling or to produce honest
/// multi-thread scaling curves.  The generator emits modules with on the
/// order of a thousand functions overall: deep callee-first call chains (so the
/// SCC schedule has real depth), loop patterns drawn from the paper's own
/// idioms (countdown loops, amortized transfer, nested drains — all
/// linearly boundable, so every function certifies), and enough parameter
/// interplay to make the per-function LPs wide rather than toy-sized.
///
/// Everything is seeded: the same spec always generates byte-identical
/// sources, so benchmark runs are comparable across hosts and commits and
/// the scaling gate "bounds identical across thread counts" is
/// well-defined.
///
//===----------------------------------------------------------------------===//

#ifndef C4B_CORPUS_SYNTHETIC_H
#define C4B_CORPUS_SYNTHETIC_H

#include <cstdint>
#include <string>
#include <vector>

namespace c4b {

/// Shape of a generated corpus.  Defaults give a 1000-function corpus
/// (about 15 s of serial analysis) suitable for a local scaling run; the
/// CI smoke configuration shrinks the module count.  Analysis cost is
/// superlinear in ChainDepth and FunctionsPerModule — summaries widen as
/// they compose up a chain, so every splice above a deep callee pays for
/// the accumulated potential indices.  Scale the corpus by adding modules
/// (cost is linear in NumModules), not by deepening them.
struct SyntheticSpec {
  /// Independent modules (= batch jobs; each is one self-contained
  /// program sharing no names with the others).
  int NumModules = 100;
  /// Functions per module, emitted callee-first.
  int FunctionsPerModule = 10;
  /// Length of the strict call chains threaded through each module:
  /// function `i` calls `i-1` within a chain, so the callgraph has
  /// `FunctionsPerModule / ChainDepth` chains of this depth feeding the
  /// module entry point.
  int ChainDepth = 5;
  /// Loops emitted per function body (drawn from the pattern pool).
  int LoopFanout = 1;
  /// LCG seed; every module derives its own stream from this.
  std::uint64_t Seed = 0xC4B5EEDULL;

  long totalFunctions() const {
    return static_cast<long>(NumModules) *
           static_cast<long>(FunctionsPerModule);
  }
};

/// One generated program.
struct SyntheticModule {
  std::string Name;      ///< e.g. "synth_m07".
  std::string EntryFunc; ///< The module's top-of-chain entry function.
  std::string Source;    ///< Complete C4B-language program text.
};

/// Generates the corpus for \p Spec.  Deterministic: equal specs yield
/// byte-identical modules.
std::vector<SyntheticModule> generateSyntheticCorpus(const SyntheticSpec &Spec);

} // namespace c4b

#endif // C4B_CORPUS_SYNTHETIC_H
